package core

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/stream"
)

func testCatalog() map[string]SourceDecl {
	return map[string]SourceDecl{
		"S":  {Schema: stream.MustSchema("S", "a0", "a1"), Label: ""},
		"T":  {Schema: stream.MustSchema("T", "a0", "a1"), Label: ""},
		"S1": {Schema: stream.MustSchema("S1", "a0", "a1"), Label: "sh"},
		"S2": {Schema: stream.MustSchema("S2", "a0", "a1"), Label: "sh"},
	}
}

func TestOpKindStringsAndArity(t *testing.T) {
	if KindSeq.String() != "seq" || KindMu.String() != "mu" || OpKind(99).String() == "" {
		t.Fatal("OpKind.String broken")
	}
	if KindSource.Arity() != 0 || KindSelect.Arity() != 1 || KindJoin.Arity() != 2 {
		t.Fatal("arity wrong")
	}
	if AggAvg.String() != "avg" || AggFn(99).String() == "" {
		t.Fatal("AggFn.String broken")
	}
}

func TestDefKeys(t *testing.T) {
	s1 := SelectDef(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 5})
	s2 := SelectDef(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 5})
	s3 := SelectDef(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 6})
	if s1.Key() != s2.Key() || s1.Key() == s3.Key() {
		t.Fatal("select keys wrong")
	}

	j1 := JoinDef(expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}, 100)
	j2 := JoinDef(expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}, 200)
	if j1.Key() == j2.Key() {
		t.Fatal("window must be part of full key")
	}
	if j1.KeyModuloWindow() != j2.KeyModuloWindow() {
		t.Fatal("KeyModuloWindow must ignore windows")
	}

	a1 := AggDef(AggAvg, 1, 60, 0)
	a2 := AggDef(AggAvg, 1, 60, 0)
	a3 := AggDef(AggSum, 1, 60, 0)
	if a1.Key() != a2.Key() || a1.Key() == a3.Key() {
		t.Fatal("agg keys wrong")
	}

	m1 := MuDef(expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}, expr.True2{}, 10)
	m2 := MuDef(expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}, expr.False2{}, 10)
	if m1.Key() == m2.Key() {
		t.Fatal("mu filter must be part of key")
	}
}

func TestKeyModuloRightConst(t *testing.T) {
	mk := func(c int64) *Def {
		return SeqDef(expr.NewAnd2(expr.Right{P: expr.ConstCmp{Attr: 0, Op: expr.Eq, C: c}}), 50)
	}
	d1, d2 := mk(3), mk(9)
	if d1.Key() == d2.Key() {
		t.Fatal("different constants must differ in full key")
	}
	if d1.KeyModuloRightConst() != d2.KeyModuloRightConst() {
		t.Fatal("KeyModuloRightConst must abstract the constant")
	}
	// Not right-indexable: falls back to full key.
	d3 := SeqDef(expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}, 50)
	if d3.KeyModuloRightConst() != d3.Key() {
		t.Fatal("non-indexable seq should use full key")
	}
	// Non-seq kinds use full key.
	sel := SelectDef(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 1})
	if sel.KeyModuloRightConst() != sel.Key() {
		t.Fatal("select should use full key")
	}
}

func TestKeyModuloLeftConstAndWindow(t *testing.T) {
	mk := func(c int64, w int64) *Def {
		return SeqDef(expr.NewAnd2(expr.Left{P: expr.ConstCmp{Attr: 1, Op: expr.Eq, C: c}}), w)
	}
	d1, d2 := mk(3, 10), mk(8, 99)
	if d1.KeyModuloLeftConstAndWindow() != d2.KeyModuloLeftConstAndWindow() {
		t.Fatal("left const and window must be abstracted")
	}
	d3 := SeqDef(expr.Duration{W: 4}, 10)
	if d3.KeyModuloLeftConstAndWindow() != d3.KeyModuloWindow() {
		t.Fatal("fallback should be KeyModuloWindow")
	}
	sel := SelectDef(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 1})
	if sel.KeyModuloLeftConstAndWindow() != sel.KeyModuloWindow() {
		t.Fatal("non-seq kinds fall back to KeyModuloWindow")
	}
}

func TestLogicalValidate(t *testing.T) {
	good := SelectL(expr.True{}, Scan("S"))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Logical{Def: SelectDef(expr.True{})} // missing child
	if err := bad.Validate(); err == nil {
		t.Fatal("missing child should fail validation")
	}
	noname := &Logical{Def: &Def{Kind: KindSource}}
	if err := noname.Validate(); err == nil {
		t.Fatal("empty source name should fail")
	}
}

func TestAddQueryBuildsNaivePlan(t *testing.T) {
	p := NewPhysical(testCatalog())
	q := NewQuery("q0", SeqL(expr.Duration{W: 10}, 10,
		SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 5}, Scan("S")),
		Scan("T")))
	if err := p.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	// Nodes: source S, source T, select, seq.
	if st.Nodes != 4 || st.Ops != 4 || st.Queries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Channels != 0 {
		t.Fatal("naive plan must have no channels")
	}
	out := p.OutputOf(q.ID)
	if out == nil || out.Schema.Arity() != 4 {
		t.Fatalf("output schema wrong: %+v", out)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := p.OutputQueries(out); len(got) != 1 || got[0] != q.ID {
		t.Fatalf("OutputQueries = %v", got)
	}
	if p.String() == "" {
		t.Fatal("String should render")
	}
}

func TestAddQueryUnknownSource(t *testing.T) {
	p := NewPhysical(testCatalog())
	q := NewQuery("bad", SelectL(expr.True{}, Scan("NOPE")))
	if err := p.AddQuery(q); err == nil {
		t.Fatal("unknown source must error")
	}
	if len(p.Queries) != 0 || p.Stats().Nodes != 0 {
		t.Fatal("failed AddQuery must not leak plan state")
	}
}

func TestSourcesShared(t *testing.T) {
	p := NewPhysical(testCatalog())
	for i := 0; i < 3; i++ {
		q := NewQuery("q", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: int64(i)}, Scan("S")))
		if err := p.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	// One shared source node + 3 select nodes.
	if st := p.Stats(); st.Nodes != 4 {
		t.Fatalf("stats = %+v", st)
	}
	s := p.SourceStream("S")
	if s == nil || len(p.Consumers(s)) != 3 {
		t.Fatal("source stream must have 3 consumers")
	}
	if p.SourceNode("S") == nil {
		t.Fatal("source node missing")
	}
}

func TestShareClasses(t *testing.T) {
	p := NewPhysical(testCatalog())
	// Selections preserve share class (§3.2 special case).
	q1 := NewQuery("q1", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 1}, Scan("S1")))
	q2 := NewQuery("q2", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 2}, Scan("S2")))
	// Same aggregate over sharable inputs stays sharable.
	q3 := NewQuery("q3", AggL(AggAvg, 1, 60, []int{0},
		SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 1}, Scan("S1"))))
	q4 := NewQuery("q4", AggL(AggAvg, 1, 60, []int{0}, Scan("S2")))
	// Different aggregate breaks sharability.
	q5 := NewQuery("q5", AggL(AggSum, 1, 60, []int{0}, Scan("S1")))
	// Unlabeled sources are not sharable with anything else.
	q6 := NewQuery("q6", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 1}, Scan("S")))
	for _, q := range []*Query{q1, q2, q3, q4, q5, q6} {
		if err := p.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	cls := func(q *Query) string { return p.OutputOf(q.ID).ShareClass }
	if cls(q1) != cls(q2) {
		t.Fatal("σ over sharable sources must be sharable")
	}
	if cls(q3) != cls(q4) {
		t.Fatal("identical aggregates over sharable streams must be sharable (σ transparent)")
	}
	if cls(q3) == cls(q5) {
		t.Fatal("different aggregate functions must not be sharable")
	}
	if cls(q1) == cls(q6) {
		t.Fatal("unlabeled source must not share with labeled class")
	}
}

func TestMergeNodes(t *testing.T) {
	p := NewPhysical(testCatalog())
	var nodes []*Node
	for i := 0; i < 3; i++ {
		q := NewQuery("q", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: int64(i)}, Scan("S")))
		if err := p.AddQuery(q); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, p.OutputOf(q.ID).Producer.Node)
	}
	merged, err := p.MergeNodes(nodes)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Ops) != 3 {
		t.Fatalf("merged node has %d ops", len(merged.Ops))
	}
	if st := p.Stats(); st.Nodes != 2 { // source + merged select
		t.Fatalf("stats = %+v", st)
	}
	for _, o := range merged.Ops {
		if o.Node != merged {
			t.Fatal("op node pointer not updated")
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Merging a single node is a no-op.
	same, err := p.MergeNodes([]*Node{merged})
	if err != nil || same != merged {
		t.Fatal("singleton merge should return the node unchanged")
	}
}

func TestMergeNodesErrors(t *testing.T) {
	p := NewPhysical(testCatalog())
	q := NewQuery("q", SelectL(expr.True{}, Scan("S")))
	if err := p.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	sel := p.OutputOf(q.ID).Producer.Node
	src := p.SourceNode("S")
	if _, err := p.MergeNodes(nil); err == nil {
		t.Fatal("empty merge should error")
	}
	if _, err := p.MergeNodes([]*Node{sel, src}); err == nil {
		t.Fatal("mixed-kind merge should error")
	}
	ghost := &Node{ID: 999, Kind: KindSelect}
	if _, err := p.MergeNodes([]*Node{sel, ghost}); err == nil {
		t.Fatal("merging unknown node should error")
	}
}

func TestCollapseOps(t *testing.T) {
	p := NewPhysical(testCatalog())
	agg := func() *Logical { return AggL(AggAvg, 1, 60, []int{0}, Scan("S")) }
	q1 := NewQuery("q1", SelectL(expr.ConstCmp{Attr: 1, Op: expr.Gt, C: 10}, agg()))
	q2 := NewQuery("q2", SelectL(expr.ConstCmp{Attr: 1, Op: expr.Gt, C: 20}, agg()))
	if err := p.AddQuery(q1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddQuery(q2); err != nil {
		t.Fatal(err)
	}
	// Find the two identical agg ops.
	var aggs []*Op
	for _, n := range p.Nodes {
		if n.Kind == KindAgg {
			aggs = append(aggs, n.Ops...)
		}
	}
	if len(aggs) != 2 {
		t.Fatalf("found %d agg ops", len(aggs))
	}
	kept, err := p.CollapseOps(aggs)
	if err != nil {
		t.Fatal(err)
	}
	// Both selections now read the kept op's output.
	if got := len(p.Consumers(kept.Out)); got != 2 {
		t.Fatalf("kept output has %d consumers, want 2", got)
	}
	// One agg node remains.
	n := 0
	for _, nd := range p.Nodes {
		if nd.Kind == KindAgg {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d agg nodes remain", n)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseOpsQueryOutputRemap(t *testing.T) {
	p := NewPhysical(testCatalog())
	mk := func() *Query { return NewQuery("q", AggL(AggAvg, 1, 60, []int{0}, Scan("S"))) }
	q1, q2 := mk(), mk()
	if err := p.AddQuery(q1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddQuery(q2); err != nil {
		t.Fatal(err)
	}
	kept, err := p.CollapseOps([]*Op{p.OutputOf(q1.ID).Producer, p.OutputOf(q2.ID).Producer})
	if err != nil {
		t.Fatal(err)
	}
	if p.OutputOf(q1.ID) != kept.Out || p.OutputOf(q2.ID) != kept.Out {
		t.Fatal("query outputs must be remapped to the kept stream")
	}
	if ids := p.OutputQueries(kept.Out); len(ids) != 2 {
		t.Fatalf("OutputQueries = %v", ids)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollapseOpsErrors(t *testing.T) {
	p := NewPhysical(testCatalog())
	q1 := NewQuery("q1", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 1}, Scan("S")))
	q2 := NewQuery("q2", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 2}, Scan("S")))
	q3 := NewQuery("q3", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 1}, Scan("T")))
	for _, q := range []*Query{q1, q2, q3} {
		if err := p.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	o1 := p.OutputOf(q1.ID).Producer
	o2 := p.OutputOf(q2.ID).Producer
	o3 := p.OutputOf(q3.ID).Producer
	if _, err := p.CollapseOps(nil); err == nil {
		t.Fatal("empty collapse should error")
	}
	if _, err := p.CollapseOps([]*Op{o1, o2}); err == nil {
		t.Fatal("different defs must not collapse")
	}
	if _, err := p.CollapseOps([]*Op{o1, o3}); err == nil {
		t.Fatal("different inputs must not collapse")
	}
}

func TestEncodeChannel(t *testing.T) {
	p := NewPhysical(testCatalog())
	q1 := NewQuery("q1", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Lt, C: 5}, Scan("S")))
	q2 := NewQuery("q2", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Lt, C: 7}, Scan("S")))
	if err := p.AddQuery(q1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddQuery(q2); err != nil {
		t.Fatal(err)
	}
	s1, s2 := p.OutputOf(q1.ID), p.OutputOf(q2.ID)
	ch, err := p.EncodeChannel([]*StreamRef{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if !ch.IsChannel() || len(ch.Streams) != 2 {
		t.Fatalf("channel wrong: %+v", ch)
	}
	if e, pos := p.EdgeOf(s2); e != ch || pos != 1 {
		t.Fatalf("EdgeOf(s2) = %v,%d", e, pos)
	}
	if st := p.Stats(); st.Channels != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if ch.Pos(s1) != 0 || ch.Pos(&StreamRef{ID: 999}) != -1 {
		t.Fatal("Pos wrong")
	}
}

func TestEncodeChannelErrors(t *testing.T) {
	p := NewPhysical(testCatalog())
	q := NewQuery("q", SelectL(expr.True{}, Scan("S")))
	if err := p.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	s := p.OutputOf(q.ID)
	if _, err := p.EncodeChannel([]*StreamRef{s}); err == nil {
		t.Fatal("single stream should error")
	}
	orphan := &StreamRef{ID: 12345, Schema: stream.MustSchema("O", "a")}
	if _, err := p.EncodeChannel([]*StreamRef{s, orphan}); err == nil {
		t.Fatal("stream without edge should error")
	}
	// Union-incompatible schemas.
	q2 := NewQuery("q2", AggL(AggCount, 0, 10, nil, Scan("T"))) // arity-1 output
	if err := p.AddQuery(q2); err != nil {
		t.Fatal(err)
	}
	if _, err := p.EncodeChannel([]*StreamRef{s, p.OutputOf(q2.ID)}); err == nil {
		t.Fatal("incompatible schemas should error")
	}
}

func TestProducerNode(t *testing.T) {
	p := NewPhysical(testCatalog())
	q1 := NewQuery("q1", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Lt, C: 5}, Scan("S")))
	q2 := NewQuery("q2", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Lt, C: 7}, Scan("S")))
	if err := p.AddQuery(q1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddQuery(q2); err != nil {
		t.Fatal(err)
	}
	s1, s2 := p.OutputOf(q1.ID), p.OutputOf(q2.ID)
	e1, _ := p.EdgeOf(s1)
	if p.ProducerNode(e1) != s1.Producer.Node {
		t.Fatal("single-stream producer wrong")
	}
	// Merge the two select nodes, then channelize: producer is the merged node.
	merged, err := p.MergeNodes([]*Node{s1.Producer.Node, s2.Producer.Node})
	if err != nil {
		t.Fatal(err)
	}
	ch, err := p.EncodeChannel([]*StreamRef{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if p.ProducerNode(ch) != merged {
		t.Fatal("channel producer should be the merged node")
	}
	// Source edge: producer is the source node.
	se, _ := p.EdgeOf(p.SourceStream("S"))
	if p.ProducerNode(se) != p.SourceNode("S") {
		t.Fatal("source edge producer should be source node")
	}
}

func TestAggSchemaNaming(t *testing.T) {
	p := NewPhysical(testCatalog())
	q := NewQuery("q", AggL(AggAvg, 1, 60, []int{0}, Scan("S")))
	if err := p.AddQuery(q); err != nil {
		t.Fatal(err)
	}
	sch := p.OutputOf(q.ID).Schema
	if sch.Arity() != 2 || sch.Attrs[0] != "a0" || sch.Attrs[1] != "a1" {
		t.Fatalf("agg schema = %v", sch.Attrs)
	}
	// Aggregating a group-by attribute renames the value column.
	q2 := NewQuery("q2", AggL(AggSum, 0, 60, []int{0}, Scan("S")))
	if err := p.AddQuery(q2); err != nil {
		t.Fatal(err)
	}
	sch2 := p.OutputOf(q2.ID).Schema
	if !strings.HasPrefix(sch2.Attrs[1], "sum_") {
		t.Fatalf("collision rename missing: %v", sch2.Attrs)
	}
	// Out-of-range attributes error.
	bad := NewQuery("bad", AggL(AggSum, 9, 60, nil, Scan("S")))
	if err := p.AddQuery(bad); err == nil {
		t.Fatal("out-of-range agg attr should error")
	}
	bad2 := NewQuery("bad2", AggL(AggSum, 0, 60, []int{9}, Scan("S")))
	if err := p.AddQuery(bad2); err == nil {
		t.Fatal("out-of-range group-by should error")
	}
}

func TestDotExport(t *testing.T) {
	p := NewPhysical(testCatalog())
	q1 := NewQuery("q1", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Lt, C: 5}, Scan("S1")))
	q2 := NewQuery("q2", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Lt, C: 5}, Scan("S2")))
	if err := p.AddQuery(q1); err != nil {
		t.Fatal(err)
	}
	if err := p.AddQuery(q2); err != nil {
		t.Fatal(err)
	}
	dot := p.Dot()
	for _, want := range []string{"digraph rumor", "source S1", "select m-op", "-> q0", "-> q1"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("dot output missing %q:\n%s", want, dot)
		}
	}
	// Channelize and confirm the dashed channel edge appears.
	if _, err := p.MergeNodes([]*Node{p.OutputOf(q1.ID).Producer.Node, p.OutputOf(q2.ID).Producer.Node}); err != nil {
		t.Fatal(err)
	}
	srcs := []*Node{p.SourceNode("S1"), p.SourceNode("S2")}
	if _, err := p.MergeNodes(srcs); err != nil {
		t.Fatal(err)
	}
	if _, err := p.EncodeChannel([]*StreamRef{p.SourceStream("S1"), p.SourceStream("S2")}); err != nil {
		t.Fatal(err)
	}
	dot = p.Dot()
	if !strings.Contains(dot, "channel ×2") || !strings.Contains(dot, "style=dashed") {
		t.Fatalf("dot output missing channel edge:\n%s", dot)
	}
}
