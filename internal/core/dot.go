package core

import (
	"fmt"
	"sort"
	"strings"
)

// Dot renders the physical plan in Graphviz dot format: one box per m-op
// node (labelled with its kind and operator count), one edge per
// stream-level connection, with channel edges drawn dashed and labelled
// with their capacity — mirroring the paper's figures, where dashed arrows
// represent channels.
func (p *Physical) Dot() string {
	var b strings.Builder
	b.WriteString("digraph rumor {\n  rankdir=BT;\n  node [shape=box, fontname=\"monospace\"];\n")
	// Plan-level channel width: live membership slots over total slots
	// (tombstones included) — the quantity channel compaction bounds.
	if st := p.Stats(); st.TotalSlots > 0 {
		fmt.Fprintf(&b, "  label=\"channels %d, slots %d/%d live\";\n",
			st.Channels, st.LiveSlots, st.TotalSlots)
	}

	refs := p.OpRefcounts()
	nodeIDs := make([]int, 0, len(p.Nodes))
	for id := range p.Nodes {
		nodeIDs = append(nodeIDs, id)
	}
	sort.Ints(nodeIDs)
	for _, id := range nodeIDs {
		n := p.Nodes[id]
		// refs: live query references across the node's operators — the
		// refcounts live removal decrements before garbage-collecting.
		nodeRefs := 0
		for _, o := range n.Ops {
			nodeRefs += refs[o.ID]
		}
		label := fmt.Sprintf("%s m-op #%d\\n%d ops, refs=%d", n.Kind, n.ID, len(n.Ops), nodeRefs)
		if n.Kind == KindSource {
			names := map[string]bool{}
			for _, o := range n.Ops {
				if o.Out != nil && o.Out.Source != "" {
					names[o.Out.Source] = true
				}
			}
			var ns []string
			for name := range names {
				ns = append(ns, name)
			}
			sort.Strings(ns)
			label = fmt.Sprintf("source %s", strings.Join(ns, ","))
			fmt.Fprintf(&b, "  n%d [label=\"%s\", shape=ellipse];\n", n.ID, label)
			continue
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\"];\n", n.ID, label)
	}

	// One dot edge per (producer node, consumer node, plan edge) triple.
	type link struct{ from, to, edge int }
	seen := map[link]bool{}
	var links []link
	for _, id := range nodeIDs {
		n := p.Nodes[id]
		for _, o := range n.Ops {
			for _, in := range o.In {
				if in.Producer == nil {
					continue
				}
				e, _ := p.EdgeOf(in)
				l := link{from: in.Producer.Node.ID, to: n.ID, edge: e.ID}
				if !seen[l] {
					seen[l] = true
					links = append(links, l)
				}
			}
		}
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].from != links[j].from {
			return links[i].from < links[j].from
		}
		if links[i].to != links[j].to {
			return links[i].to < links[j].to
		}
		return links[i].edge < links[j].edge
	})
	for _, l := range links {
		e := p.Edges[l.edge]
		if e != nil && e.IsChannel() {
			// Membership width: live streams over total slots (tombstoned
			// positions from removed queries keep their slot).
			live, total := e.LiveStreams(), len(e.Streams)
			width := fmt.Sprintf("%d", live)
			if live != total {
				width = fmt.Sprintf("%d/%d", live, total)
			}
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, label=\"channel ×%s\"];\n",
				l.from, l.to, width)
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", l.from, l.to)
		}
	}

	// Query sinks.
	qids := make([]int, 0, len(p.Queries))
	for _, q := range p.Queries {
		qids = append(qids, q.ID)
	}
	sort.Ints(qids)
	for _, qid := range qids {
		out := p.outStream[qid]
		if out == nil || out.Producer == nil {
			continue
		}
		fmt.Fprintf(&b, "  q%d [label=\"Q%d\", shape=plaintext];\n", qid, qid)
		fmt.Fprintf(&b, "  n%d -> q%d [arrowhead=vee];\n", out.Producer.Node.ID, qid)
	}
	b.WriteString("}\n")
	return b.String()
}
