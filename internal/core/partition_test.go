package core

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/stream"
)

func partCatalog(names ...string) map[string]SourceDecl {
	cat := make(map[string]SourceDecl)
	for _, n := range names {
		cat[n] = SourceDecl{Schema: stream.MustSchema(n, "a", "b", "c")}
	}
	return cat
}

func mustPlan(t *testing.T, cat map[string]SourceDecl, qs ...*Query) *Physical {
	t.Helper()
	p := NewPhysical(cat)
	for _, q := range qs {
		if err := p.AddQuery(q); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// Stateless plans: every source can be partitioned round-robin and no sink
// is replicated.
func TestAnalyzePartitionStateless(t *testing.T) {
	p := mustPlan(t, partCatalog("S"),
		NewQuery("q0", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 1}, Scan("S"))),
		NewQuery("q1", ProjectL(expr.Identity(3), Scan("S"))),
	)
	pp := AnalyzePartition(p)
	if !pp.Parallel {
		t.Fatal("stateless plan should be parallel")
	}
	if got := pp.Routes["S"].Mode; got != PartitionRoundRobin {
		t.Fatalf("S mode = %v, want round-robin", got)
	}
	if len(pp.ReplicatedSinks) != 0 {
		t.Fatalf("unexpected replicated sinks: %v", pp.ReplicatedSinks)
	}
}

// Equi-keyed sequences (Workload 2 shape): both sources hash on the join
// attribute.
func TestAnalyzePartitionEquiSeq(t *testing.T) {
	pred := expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}
	p := mustPlan(t, partCatalog("S", "T"),
		NewQuery("q0", SeqL(pred, 100, Scan("S"), Scan("T"))),
	)
	pp := AnalyzePartition(p)
	if got := pp.Routes["S"]; got.Mode != PartitionHash || got.Attr != 0 {
		t.Fatalf("S route = %+v, want hash(a0)", got)
	}
	if got := pp.Routes["T"]; got.Mode != PartitionHash || got.Attr != 0 {
		t.Fatalf("T route = %+v, want hash(a0)", got)
	}
	if len(pp.ReplicatedSinks) != 0 {
		t.Fatalf("unexpected replicated sinks: %v", pp.ReplicatedSinks)
	}
}

// Unkeyed sequences with FR/AN constants (Workload 1 shape): the instance
// side hashes on the selection attribute and the probing side is routed by
// a content-based multicast table keyed on the right constant.
func TestAnalyzePartitionUnkeyedSeq(t *testing.T) {
	pred := expr.NewAnd2(expr.Right{P: expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 7}})
	p := mustPlan(t, partCatalog("S", "T"),
		NewQuery("q0", SeqL(pred, 100,
			SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 3}, Scan("S")),
			Scan("T"))),
	)
	pp := AnalyzePartition(p)
	if got := pp.Routes["S"]; got.Mode != PartitionHash || got.Attr != 0 {
		t.Fatalf("S route = %+v, want hash(a0)", got)
	}
	tr := pp.Routes["T"]
	if tr.Mode != PartitionMulticast || tr.Attr != 0 {
		t.Fatalf("T route = %+v, want multicast on a0", tr)
	}
	if got := tr.Table[7]; len(got) != 1 || got[0] != 3 {
		t.Fatalf("T multicast table[7] = %v, want [3]", got)
	}
	if len(tr.Always) != 0 {
		t.Fatalf("T Always = %v, want empty", tr.Always)
	}
	if pp.ReplicatedSinks[0] {
		t.Fatal("sink fed by a partitioned side must not be replicated")
	}
	if !pp.Parallel {
		t.Fatal("plan should remain parallel")
	}
}

// A W1 shape whose probing source is also read by an independent filter
// query cannot multicast (the filter would lose tuples): it broadcasts.
func TestAnalyzePartitionMulticastBlockedByOtherConsumer(t *testing.T) {
	pred := expr.NewAnd2(expr.Right{P: expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 7}})
	p := mustPlan(t, partCatalog("S", "T"),
		NewQuery("q0", SeqL(pred, 100,
			SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 3}, Scan("S")),
			Scan("T"))),
		NewQuery("q1", SelectL(expr.ConstCmp{Attr: 1, Op: expr.Gt, C: 5}, Scan("T"))),
	)
	pp := AnalyzePartition(p)
	if got := pp.Routes["T"].Mode; got != PartitionBroadcast {
		t.Fatalf("T mode = %v, want broadcast", got)
	}
	if !pp.ReplicatedSinks[1] {
		t.Fatal("filter over broadcast source should be a replicated sink")
	}
}

// A sequence without any selection on the instance side cannot build a
// multicast table; the probe side broadcasts and the instance side stays
// partitioned round-robin.
func TestAnalyzePartitionUnkeyedSeqNoSelect(t *testing.T) {
	pred := expr.NewAnd2(expr.Right{P: expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 7}})
	p := mustPlan(t, partCatalog("S", "T"),
		NewQuery("q0", SeqL(pred, 100, Scan("S"), Scan("T"))),
	)
	pp := AnalyzePartition(p)
	if got := pp.Routes["S"].Mode; got != PartitionRoundRobin {
		t.Fatalf("S mode = %v, want round-robin", got)
	}
	if got := pp.Routes["T"].Mode; got != PartitionBroadcast {
		t.Fatalf("T mode = %v, want broadcast", got)
	}
}

// Aggregates keyed by a group-by column hash on it; a global aggregate
// (no group-by) forces its source to broadcast and replicates the sink.
func TestAnalyzePartitionAgg(t *testing.T) {
	p := mustPlan(t, partCatalog("S"),
		NewQuery("grouped", AggL(AggSum, 1, 60, []int{0}, Scan("S"))),
	)
	pp := AnalyzePartition(p)
	if got := pp.Routes["S"]; got.Mode != PartitionHash || got.Attr != 0 {
		t.Fatalf("S route = %+v, want hash(a0)", got)
	}

	p2 := mustPlan(t, partCatalog("S"),
		NewQuery("global", AggL(AggSum, 1, 60, nil, Scan("S"))),
	)
	pp2 := AnalyzePartition(p2)
	if got := pp2.Routes["S"].Mode; got != PartitionBroadcast {
		t.Fatalf("S mode = %v, want broadcast", got)
	}
	if !pp2.ReplicatedSinks[0] {
		t.Fatal("global aggregate sink should be replicated")
	}
	if pp2.Parallel {
		t.Fatal("fully broadcast plan is not parallel")
	}
}

// A keyed aggregate that then feeds an unkeyed sequence as the probe side:
// the aggregate's source must broadcast, and a select-only query on the
// same source becomes a replicated sink.
func TestAnalyzePartitionMixedDemotion(t *testing.T) {
	pred := expr.NewAnd2(expr.Right{P: expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 7}})
	p := mustPlan(t, partCatalog("S", "T"),
		NewQuery("pattern", SeqL(pred, 100, Scan("S"), AggL(AggSum, 1, 60, []int{0}, Scan("T")))),
		NewQuery("filter", SelectL(expr.ConstCmp{Attr: 0, Op: expr.Gt, C: 5}, Scan("T"))),
	)
	pp := AnalyzePartition(p)
	if got := pp.Routes["T"].Mode; got != PartitionBroadcast {
		t.Fatalf("T mode = %v, want broadcast (probe side of unkeyed seq)", got)
	}
	if got := pp.Routes["S"].Mode; got == PartitionBroadcast {
		t.Fatalf("S mode = %v, want partitioned", got)
	}
	// Query 1 reads only the broadcast source through a selection: its
	// results are identical on every shard.
	if !pp.ReplicatedSinks[1] {
		t.Fatal("select over broadcast source should be a replicated sink")
	}
	if pp.ReplicatedSinks[0] {
		t.Fatal("pattern sink is partitioned, not replicated")
	}
}

// A replicated instance side with partitioned events is only sound for
// joins (all pairs emitted). A sequence consumes its instance at the
// first match, so once S is forced to broadcast (by the global agg), the
// seq's event side must broadcast too — scattering T would let each
// shard's instance replica react to its own first event.
func TestAnalyzePartitionReplicatedSeqLeftForcesBroadcastRight(t *testing.T) {
	pred := expr.NewAnd2(expr.Right{P: expr.ConstCmp{Attr: 1, Op: expr.Gt, C: 0}})
	p := mustPlan(t, partCatalog("S", "T"),
		NewQuery("total", AggL(AggCount, 0, 1000, nil, Scan("S"))),
		NewQuery("q", SeqL(pred, 100, Scan("S"), Scan("T"))),
	)
	pp := AnalyzePartition(p)
	if got := pp.Routes["S"].Mode; got != PartitionBroadcast {
		t.Fatalf("S mode = %v, want broadcast (global agg)", got)
	}
	if got := pp.Routes["T"].Mode; got != PartitionBroadcast {
		t.Fatalf("T mode = %v, want broadcast (seq consumes its instance)", got)
	}
	if !pp.ReplicatedSinks[0] || !pp.ReplicatedSinks[1] {
		t.Fatalf("both sinks should be replicated: %v", pp.ReplicatedSinks)
	}

	// The same shape with a join keeps T partitioned: joins emit every
	// pair, so replicated buffers plus scattered probes stay exact.
	p2 := mustPlan(t, partCatalog("S", "T"),
		NewQuery("total", AggL(AggCount, 0, 1000, nil, Scan("S"))),
		NewQuery("q", JoinL(expr.AttrCmp2{L: 1, Op: expr.Lt, R: 1}, 100, Scan("S"), Scan("T"))),
	)
	pp2 := AnalyzePartition(p2)
	if got := pp2.Routes["T"].Mode; got == PartitionBroadcast {
		t.Fatalf("T mode = %v, want partitioned for the join shape", got)
	}
	if pp2.ReplicatedSinks[1] {
		t.Fatal("join sink over scattered probes is partitioned, not replicated")
	}
}

// µ over an equi key partitions; µ without one must broadcast the event
// side even though a plain sequence could scatter it.
func TestAnalyzePartitionMu(t *testing.T) {
	rebind := expr.NewAnd2(
		expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0},
		expr.AttrCmp2{L: 4, Op: expr.Lt, R: 1},
	)
	filter := expr.Not2{P: expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}}
	p := mustPlan(t, partCatalog("S", "T"),
		NewQuery("mu", MuL(rebind, filter, 1000, Scan("S"), Scan("T"))),
	)
	pp := AnalyzePartition(p)
	if got := pp.Routes["S"]; got.Mode != PartitionHash || got.Attr != 0 {
		t.Fatalf("S route = %+v, want hash(a0)", got)
	}
	if got := pp.Routes["T"]; got.Mode != PartitionHash || got.Attr != 0 {
		t.Fatalf("T route = %+v, want hash(a0)", got)
	}

	// Unkeyed µ: rebind references only the mutable last-event slot.
	rebind2 := expr.NewAnd2(expr.AttrCmp2{L: 4, Op: expr.Lt, R: 1})
	p2 := mustPlan(t, partCatalog("S", "T"),
		NewQuery("mu", MuL(rebind2, filter, 1000, Scan("S"), Scan("T"))),
	)
	pp2 := AnalyzePartition(p2)
	if got := pp2.Routes["T"].Mode; got != PartitionBroadcast {
		t.Fatalf("T mode = %v, want broadcast for unkeyed µ", got)
	}
	if got := pp2.Routes["S"].Mode; got == PartitionBroadcast {
		t.Fatalf("S mode = %v, want partitioned", got)
	}
}

// Shared sources across conflicting uses: an equi-seq proposes a hash
// route, but a second query aggregating the same source without the key in
// its group-by forces broadcast for that source.
func TestAnalyzePartitionConflictingUses(t *testing.T) {
	pred := expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}
	p := mustPlan(t, partCatalog("S", "T"),
		NewQuery("seq", SeqL(pred, 100, Scan("S"), Scan("T"))),
		NewQuery("agg", AggL(AggSum, 2, 60, []int{1}, Scan("T"))),
	)
	pp := AnalyzePartition(p)
	// T cannot hash on a0 (the agg groups by a1) nor on a1 (the seq keys
	// on a0): it must broadcast. S may stay partitioned (replicated
	// probes are safe).
	if got := pp.Routes["T"].Mode; got != PartitionBroadcast {
		t.Fatalf("T mode = %v, want broadcast", got)
	}
	if got := pp.Routes["S"].Mode; got == PartitionBroadcast {
		t.Fatalf("S mode = %v, want partitioned", got)
	}
	if !pp.ReplicatedSinks[1] {
		t.Fatal("agg over broadcast source should be a replicated sink")
	}
}

// origin traces attribute lineage through select/project/agg/concat.
func TestPartitionOriginTracing(t *testing.T) {
	p := mustPlan(t, partCatalog("S", "T"),
		NewQuery("q", JoinL(expr.AttrCmp2{L: 0, Op: expr.Eq, R: 1}, 50,
			SelectL(expr.ConstCmp{Attr: 2, Op: expr.Gt, C: 0}, Scan("S")),
			AggL(AggAvg, 2, 60, []int{1}, Scan("T")))),
	)
	pp := AnalyzePartition(p)
	// Join keys: left = σ(S) attr 0 → S.a0; right = agg output attr 1...
	// the agg output is [group(a1), avg] so attr 1 is the aggregate value:
	// untraceable → no hash key for T, and the unkeyed join demotes T.
	if got := pp.Routes["S"].Mode; got == PartitionBroadcast {
		t.Fatalf("S mode = %v, want partitioned", got)
	}
	if got := pp.Routes["T"].Mode; got != PartitionBroadcast {
		t.Fatalf("T mode = %v, want broadcast", got)
	}
}
