package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/stream"
)

// StreamRef is a logical stream in a physical plan: the output of one
// operator instance (or a source). Channels encode one or more StreamRefs
// on a single Edge; a stream's position within its edge is its membership
// bit index.
type StreamRef struct {
	ID       int
	Schema   *stream.Schema
	Producer *Op    // nil for source streams
	Source   string // source name when Producer == nil
	// ShareClass is the canonical signature of the paper's sharable-stream
	// relation ∼ (§3.2): two streams are sharable iff their classes are
	// equal.
	ShareClass string
	// Dead marks a tombstoned stream: its producer was garbage-collected
	// by live query removal, but the stream keeps its slot on a shared
	// channel edge so surviving streams' membership positions stay stable.
	Dead bool
}

// Op is one physical operator instance, owned by a query. An m-op (Node)
// implements a set of Ops.
type Op struct {
	ID      int
	QueryID int
	Def     *Def
	In      []*StreamRef
	Out     *StreamRef
	Node    *Node // owning m-op
}

// Node is an m-op in the plan DAG: the scheduling and execution unit,
// implementing one or more operators of the same kind (§2.2).
type Node struct {
	ID   int
	Kind OpKind
	Ops  []*Op
}

// Edge is a channel: the physical carrier of one or more streams (§3.1).
// A fresh plan has single-stream edges; the cτ rules merge sharable
// streams into multi-stream edges whose tuples carry membership vectors.
type Edge struct {
	ID      int
	Streams []*StreamRef
}

// IsChannel reports whether the edge encodes more than one stream
// (tombstoned streams keep their slot and still count structurally:
// membership positions are defined over all slots).
func (e *Edge) IsChannel() bool { return len(e.Streams) > 1 }

// LiveStreams returns the number of non-tombstoned streams on the edge.
func (e *Edge) LiveStreams() int {
	n := 0
	for _, s := range e.Streams {
		if !s.Dead {
			n++
		}
	}
	return n
}

// Pos returns the membership index of stream s on the edge, or -1.
func (e *Edge) Pos(s *StreamRef) int {
	for i, t := range e.Streams {
		if t == s {
			return i
		}
	}
	return -1
}

// Physical is a multi-query physical plan: a DAG of m-op Nodes connected
// by channel Edges, implementing all currently active queries (§2.1).
type Physical struct {
	Catalog map[string]SourceDecl

	Nodes map[int]*Node
	Edges map[int]*Edge

	Queries []*Query

	streamEdge  map[int]*Edge    // stream ID → carrying edge
	consumersOf map[int][]*Op    // stream ID → consuming ops
	sourceNode  map[string]*Node // source name → source node
	sourceRef   map[string]*StreamRef
	outStream   map[int]*StreamRef // query ID → output stream
	// classStreams indexes live streams by their ∼ share class, so the
	// incremental channel rule finds a dirty operator's sharing partners
	// without scanning the plan.
	classStreams map[string][]*StreamRef

	nextStream, nextOp, nextNode, nextEdge, nextQuery int

	// rec, when non-nil, records plan mutations for live maintenance
	// (see delta.go).
	rec *Delta
}

// NewPhysical creates an empty plan over the given source catalog.
func NewPhysical(catalog map[string]SourceDecl) *Physical {
	return &Physical{
		Catalog:      catalog,
		Nodes:        make(map[int]*Node),
		Edges:        make(map[int]*Edge),
		streamEdge:   make(map[int]*Edge),
		consumersOf:  make(map[int][]*Op),
		sourceNode:   make(map[string]*Node),
		sourceRef:    make(map[string]*StreamRef),
		outStream:    make(map[int]*StreamRef),
		classStreams: make(map[string][]*StreamRef),
	}
}

// addClassStream registers a freshly created stream in the share-class
// index (its ShareClass must already be set).
func (p *Physical) addClassStream(s *StreamRef) {
	if s.ShareClass == "" {
		return
	}
	p.classStreams[s.ShareClass] = append(p.classStreams[s.ShareClass], s)
}

// dropClassStream removes a dead stream from the share-class index.
func (p *Physical) dropClassStream(s *StreamRef) {
	list := p.classStreams[s.ShareClass]
	out := list[:0]
	for _, x := range list {
		if x != s {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		delete(p.classStreams, s.ShareClass)
	} else {
		p.classStreams[s.ShareClass] = out
	}
}

// StreamsOfClass returns the live streams of one ∼ share class. The result
// is the index's backing slice; callers must not mutate it.
func (p *Physical) StreamsOfClass(class string) []*StreamRef {
	return p.classStreams[class]
}

// AddQuery plans q naively — one operator per m-op, one stream per edge —
// and registers its output stream. The m-rules then rewrite the plan.
func (p *Physical) AddQuery(q *Query) error {
	if err := q.Root.Validate(); err != nil {
		return fmt.Errorf("query %q: %w", q.Name, err)
	}
	// Pre-validate sources before mutating the plan.
	if err := p.checkSources(q.Root); err != nil {
		return fmt.Errorf("query %q: %w", q.Name, err)
	}
	q.ID = p.nextQuery
	p.nextQuery++
	out, err := p.build(q.ID, q.Root)
	if err != nil {
		return fmt.Errorf("query %q: %w", q.Name, err)
	}
	p.Queries = append(p.Queries, q)
	p.outStream[q.ID] = out
	if p.rec != nil {
		p.rec.NewQueries = append(p.rec.NewQueries, q.ID)
	}
	return nil
}

func (p *Physical) checkSources(l *Logical) error {
	if l.Def.Kind == KindSource {
		if _, ok := p.Catalog[l.Source]; !ok {
			return fmt.Errorf("unknown source stream %q", l.Source)
		}
		return nil
	}
	for _, c := range l.Children {
		if err := p.checkSources(c); err != nil {
			return err
		}
	}
	return nil
}

// build recursively constructs operators for the logical tree and returns
// the output stream of the root.
func (p *Physical) build(queryID int, l *Logical) (*StreamRef, error) {
	if l.Def.Kind == KindSource {
		return p.ensureSource(l.Source), nil
	}
	ins := make([]*StreamRef, len(l.Children))
	for i, c := range l.Children {
		s, err := p.build(queryID, c)
		if err != nil {
			return nil, err
		}
		ins[i] = s
	}
	outSchema, err := outputSchema(l.Def, ins)
	if err != nil {
		return nil, err
	}
	op := &Op{ID: p.nextOp, QueryID: queryID, Def: l.Def, In: ins}
	p.nextOp++
	out := &StreamRef{ID: p.nextStream, Schema: outSchema, Producer: op}
	p.nextStream++
	p.noteNewStream(out.ID)
	out.ShareClass = p.shareClass(op, ins)
	p.addClassStream(out)
	op.Out = out
	node := &Node{ID: p.nextNode, Kind: l.Def.Kind, Ops: []*Op{op}}
	p.nextNode++
	op.Node = node
	p.Nodes[node.ID] = node
	p.noteDirty(node.ID)
	p.addEdge(out)
	for _, s := range ins {
		p.consumersOf[s.ID] = append(p.consumersOf[s.ID], op)
	}
	return out, nil
}

// ensureSource returns the (shared) stream of a named source, creating its
// node and edge on first use.
func (p *Physical) ensureSource(name string) *StreamRef {
	if s, ok := p.sourceRef[name]; ok {
		return s
	}
	decl := p.Catalog[name]
	op := &Op{ID: p.nextOp, QueryID: -1, Def: &Def{Kind: KindSource}}
	p.nextOp++
	s := &StreamRef{ID: p.nextStream, Schema: decl.Schema, Producer: op, Source: name}
	p.nextStream++
	p.noteNewStream(s.ID)
	if decl.Label != "" {
		s.ShareClass = "src:" + decl.Label
	} else {
		s.ShareClass = "src#" + name
	}
	p.addClassStream(s)
	op.Out = s
	node := &Node{ID: p.nextNode, Kind: KindSource, Ops: []*Op{op}}
	p.nextNode++
	op.Node = node
	p.Nodes[node.ID] = node
	p.noteDirty(node.ID)
	p.sourceNode[name] = node
	p.sourceRef[name] = s
	p.addEdge(s)
	return s
}

func (p *Physical) addEdge(s *StreamRef) *Edge {
	e := &Edge{ID: p.nextEdge, Streams: []*StreamRef{s}}
	p.nextEdge++
	p.Edges[e.ID] = e
	p.streamEdge[s.ID] = e
	p.noteNewEdge(e.ID)
	return e
}

// shareClass computes the ∼ signature of op's output (§3.2): a selection's
// output is sharable with its input; otherwise the class is determined by
// the operator definition and the classes of the inputs.
func (p *Physical) shareClass(op *Op, ins []*StreamRef) string {
	if op.Def.Kind == KindSelect {
		return ins[0].ShareClass
	}
	parts := make([]string, 0, len(ins)+1)
	parts = append(parts, op.Def.Key())
	for _, s := range ins {
		parts = append(parts, s.ShareClass)
	}
	return "(" + strings.Join(parts, "~") + ")"
}

// outputSchema derives the schema of an operator's output stream.
func outputSchema(d *Def, ins []*StreamRef) (*stream.Schema, error) {
	schemas := make([]*stream.Schema, len(ins))
	for i, s := range ins {
		schemas[i] = s.Schema
	}
	return OutputSchema(d, schemas)
}

// SchemaOf computes the output schema of a logical tree under a source
// catalog (used by the query-language binder).
func SchemaOf(l *Logical, catalog map[string]SourceDecl) (*stream.Schema, error) {
	if l.Def.Kind == KindSource {
		decl, ok := catalog[l.Source]
		if !ok {
			return nil, fmt.Errorf("unknown source stream %q", l.Source)
		}
		return decl.Schema, nil
	}
	ins := make([]*stream.Schema, len(l.Children))
	for i, c := range l.Children {
		s, err := SchemaOf(c, catalog)
		if err != nil {
			return nil, err
		}
		ins[i] = s
	}
	return OutputSchema(l.Def, ins)
}

// OutputSchema derives the schema of an operator's output from its input
// schemas.
func OutputSchema(d *Def, ins []*stream.Schema) (*stream.Schema, error) {
	switch d.Kind {
	case KindSelect:
		return ins[0], nil
	case KindProject:
		attrs := make([]string, d.Map.Arity())
		for i := range attrs {
			attrs[i] = fmt.Sprintf("x%d", i)
		}
		return stream.NewSchema("proj", attrs...)
	case KindAgg:
		in := ins[0]
		attrs := make([]string, 0, len(d.GroupBy)+1)
		seen := map[string]bool{}
		for _, g := range d.GroupBy {
			if g < 0 || g >= in.Arity() {
				return nil, fmt.Errorf("group-by attribute %d out of range for schema %s", g, in.Name)
			}
			attrs = append(attrs, in.Attrs[g])
			seen[in.Attrs[g]] = true
		}
		if d.AggAttr < 0 || d.AggAttr >= in.Arity() {
			return nil, fmt.Errorf("aggregate attribute %d out of range for schema %s", d.AggAttr, in.Name)
		}
		val := in.Attrs[d.AggAttr]
		if seen[val] {
			val = d.Agg.String() + "_" + val
		}
		attrs = append(attrs, val)
		return stream.NewSchema("agg_"+in.Name, attrs...)
	case KindJoin, KindSeq, KindMu:
		return ins[0].Concat(ins[1], "r_"), nil
	}
	return nil, fmt.Errorf("no output schema for kind %s", d.Kind)
}

// ---------------------------------------------------------------------------
// Accessors used by the rule engine, the lowering step, and tests
// ---------------------------------------------------------------------------

// EdgeOf returns the edge carrying stream s and the stream's membership
// position on it.
func (p *Physical) EdgeOf(s *StreamRef) (*Edge, int) {
	e := p.streamEdge[s.ID]
	if e == nil {
		return nil, -1
	}
	return e, e.Pos(s)
}

// Consumers returns the operators reading stream s.
func (p *Physical) Consumers(s *StreamRef) []*Op {
	return p.consumersOf[s.ID]
}

// OutputOf returns the output stream of query id (nil if unknown).
func (p *Physical) OutputOf(queryID int) *StreamRef { return p.outStream[queryID] }

// OutputQueries returns, for stream s, the IDs of queries whose output is
// s, in ascending order.
func (p *Physical) OutputQueries(s *StreamRef) []int {
	var ids []int
	for qid, o := range p.outStream {
		if o == s {
			ids = append(ids, qid)
		}
	}
	sort.Ints(ids)
	return ids
}

// SourceStream returns the stream of the named source (nil if unused).
func (p *Physical) SourceStream(name string) *StreamRef { return p.sourceRef[name] }

// SourceNode returns the node of the named source (nil if unused).
func (p *Physical) SourceNode(name string) *Node { return p.sourceNode[name] }

// ProducerNode returns the node producing edge e (nil for mixed/invalid).
func (p *Physical) ProducerNode(e *Edge) *Node {
	var n *Node
	for _, s := range e.Streams {
		if s.Producer == nil {
			return nil
		}
		if n == nil {
			n = s.Producer.Node
		} else if n != s.Producer.Node {
			return nil
		}
	}
	return n
}

// ---------------------------------------------------------------------------
// Plan rewriting primitives (the vocabulary of m-rule actions)
// ---------------------------------------------------------------------------

// MergeNodes merges the given nodes (all of the same kind) into a single
// m-op node implementing the union of their operators. Edges are left
// untouched: each operator keeps its own input and output streams. This is
// the action of the sτ rules (§2.3): "replacing that set of operators with
// a single m-op".
func (p *Physical) MergeNodes(nodes []*Node) (*Node, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("MergeNodes: empty set")
	}
	kind := nodes[0].Kind
	var ops []*Op
	for _, n := range nodes {
		if n.Kind != kind {
			return nil, fmt.Errorf("MergeNodes: mixed kinds %s and %s", kind, n.Kind)
		}
		if _, ok := p.Nodes[n.ID]; !ok {
			return nil, fmt.Errorf("MergeNodes: node %d not in plan", n.ID)
		}
		ops = append(ops, n.Ops...)
	}
	if len(nodes) == 1 {
		return nodes[0], nil
	}
	merged := &Node{ID: p.nextNode, Kind: kind, Ops: ops}
	p.nextNode++
	for _, n := range nodes {
		delete(p.Nodes, n.ID)
		p.noteRemovedNode(n.ID)
		for name, sn := range p.sourceNode {
			if sn == n {
				p.sourceNode[name] = merged
			}
		}
	}
	for _, o := range ops {
		o.Node = merged
	}
	p.Nodes[merged.ID] = merged
	p.noteDirty(merged.ID)
	return merged, nil
}

// CollapseOps implements common-subexpression elimination: all ops must
// have identical definitions and read the same streams. The first op is
// kept; consumers of the others' outputs are rewired to the kept op's
// output stream, query outputs are remapped, and the redundant ops are
// removed from their nodes (empty nodes are deleted). Used by s; and sµ
// (§4.3, prefix state merging) and to share identical aggregates (Fig 6).
func (p *Physical) CollapseOps(ops []*Op) (*Op, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("CollapseOps: empty set")
	}
	keep := ops[0]
	for _, o := range ops[1:] {
		if o.Def.Key() != keep.Def.Key() {
			return nil, fmt.Errorf("CollapseOps: definitions differ: %s vs %s", o.Def.Key(), keep.Def.Key())
		}
		if len(o.In) != len(keep.In) {
			return nil, fmt.Errorf("CollapseOps: arity mismatch")
		}
		for i := range o.In {
			if o.In[i] != keep.In[i] {
				return nil, fmt.Errorf("CollapseOps: input streams differ")
			}
		}
	}
	for _, o := range ops[1:] {
		dead := o.Out
		p.dropClassStream(dead)
		p.noteDroppedStream(dead.ID)
		// Rewire consumers of the dead stream to keep.Out.
		for _, c := range p.consumersOf[dead.ID] {
			for i, s := range c.In {
				if s == dead {
					c.In[i] = keep.Out
				}
			}
			p.consumersOf[keep.Out.ID] = append(p.consumersOf[keep.Out.ID], c)
			p.noteDirty(c.Node.ID)
		}
		delete(p.consumersOf, dead.ID)
		// Remap query outputs.
		for qid, s := range p.outStream {
			if s == dead {
				p.outStream[qid] = keep.Out
			}
		}
		// Remove the dead op from input-consumer indexes.
		for _, in := range o.In {
			p.consumersOf[in.ID] = removeOp(p.consumersOf[in.ID], o)
		}
		// Drop the dead edge and stream.
		if e := p.streamEdge[dead.ID]; e != nil {
			e.Streams = removeStream(e.Streams, dead)
			if len(e.Streams) == 0 {
				delete(p.Edges, e.ID)
				p.noteRemovedEdge(e.ID)
			}
		}
		delete(p.streamEdge, dead.ID)
		// Remove the op from its node.
		n := o.Node
		n.Ops = removeOp(n.Ops, o)
		if len(n.Ops) == 0 {
			delete(p.Nodes, n.ID)
			p.noteRemovedNode(n.ID)
		} else {
			p.noteDirty(n.ID)
		}
	}
	return keep, nil
}

// EncodeChannel merges the edges carrying the given streams into a single
// channel edge (§3.1). All streams must currently be on single-stream (or
// already-merged) edges produced by the same node, with union-compatible
// schemas — the channel-based MQO sharing criteria (§3.2) are checked by
// the rules, not here; this primitive only enforces structural sanity.
//
// In live mode (an active delta recording), a pre-existing channel that
// absorbs delta-new streams hands its tombstoned slots to the newcomers
// before growing: each reused slot's bit is scrubbed from the stored
// memberships of the running consumers (recorded as a ChannelRemap on the
// delta), so an add/remove/add cycle reclaims dead positions instead of
// widening every membership word forever.
func (p *Physical) EncodeChannel(streams []*StreamRef) (*Edge, error) {
	if len(streams) < 2 {
		return nil, fmt.Errorf("EncodeChannel: need at least 2 streams")
	}
	seenEdge := map[int]bool{}
	var edges []*Edge
	for _, s := range streams {
		e := p.streamEdge[s.ID]
		if e == nil {
			return nil, fmt.Errorf("EncodeChannel: stream %d has no edge", s.ID)
		}
		if !seenEdge[e.ID] {
			seenEdge[e.ID] = true
			edges = append(edges, e)
		}
	}
	var all []*StreamRef
	if p.rec != nil && len(edges) > 1 && !p.rec.NewEdges[edges[0].ID] && edges[0].IsChannel() {
		// Live growth of a pre-existing channel (the caller orders its
		// streams first): fill tombstoned slots with the incoming streams,
		// then append the rest. Reused slots are scrubbed: stored tuples
		// whose membership carried the dead stream's bit must not appear
		// to belong to the newcomer.
		base := edges[0]
		slots := append([]*StreamRef(nil), base.Streams...)
		var table []int
		for _, e := range edges[1:] {
			for _, s := range e.Streams {
				placed := false
				for i, old := range slots {
					if !old.Dead {
						continue
					}
					if table == nil {
						table = make([]int, len(base.Streams))
						for j := range table {
							table[j] = j
						}
					}
					table[i] = -1
					delete(p.streamEdge, old.ID)
					slots[i] = s
					placed = true
					break
				}
				if !placed {
					slots = append(slots, s)
				}
			}
		}
		if table != nil {
			p.noteRemap(base.ID, table, base.Streams)
		}
		all = slots
	} else {
		for _, e := range edges {
			all = append(all, e.Streams...)
		}
	}
	for _, s := range all[1:] {
		if !s.Schema.UnionCompatible(all[0].Schema) {
			return nil, fmt.Errorf("EncodeChannel: schemas not union-compatible (%d vs %d attrs)",
				s.Schema.Arity(), all[0].Schema.Arity())
		}
	}
	ch := &Edge{ID: p.nextEdge, Streams: all}
	p.nextEdge++
	// For the live channel gate, the merged edge counts as delta-new only
	// when every absorbed edge was delta-new: a grown pre-existing channel
	// keeps its "existing" status, so a later rule round cannot fold it
	// into another pre-existing channel (which would shift the stored
	// membership positions of one of them).
	allNew := p.rec != nil
	for eid := range seenEdge {
		if p.rec != nil && !p.rec.NewEdges[eid] {
			allNew = false
		}
	}
	for eid := range seenEdge {
		delete(p.Edges, eid)
		p.noteRemovedEdge(eid)
	}
	p.Edges[ch.ID] = ch
	if allNew {
		p.noteNewEdge(ch.ID)
	}
	for _, s := range all {
		p.streamEdge[s.ID] = ch
		if s.Dead {
			continue // tombstone: producer GC'd, no consumers
		}
		// Re-lower everything wired to the re-encoded streams: their edge
		// identity (and possibly their membership position) changed.
		if s.Producer != nil {
			p.noteDirty(s.Producer.Node.ID)
		}
		for _, c := range p.consumersOf[s.ID] {
			p.noteDirty(c.Node.ID)
		}
	}
	return ch, nil
}

// CompactChannels re-encodes every channel whose tombstoned slots dominate
// (live streams < half the total slots): dead positions are dropped, the
// surviving streams are packed down in order, and the position remap is
// recorded on the active delta so the engines rewrite the memberships
// stored inside the running m-ops before re-lowering the consumers. When a
// channel is left with a single live stream, one tombstone slot is kept
// (scrubbed of its stored bits) so the edge stays structurally a channel —
// running operators keep their membership-gated lowering, and the slot is
// the first candidate for reuse on a later add. It returns the number of
// edges compacted.
//
// Compaction preserves the steady-state width invariant live/total ≥ 1/2:
// an edge only ever drops below it transiently, inside the maintenance
// operation that immediately compacts it.
func (p *Physical) CompactChannels() int {
	// Candidate scan first: the common removal leaves no channel below
	// threshold, and must not pay a sort over every edge.
	var ids []int
	for id, e := range p.Edges {
		if !e.IsChannel() {
			continue
		}
		live := e.LiveStreams()
		if live > 0 && live*2 < len(e.Streams) {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return 0
	}
	sort.Ints(ids) // deterministic delta order
	for _, id := range ids {
		e := p.Edges[id]
		p.compactEdge(e, e.LiveStreams())
	}
	return len(ids)
}

// compactEdge rewrites one channel in place: live streams keep their
// relative order at packed positions, dead slots are dropped (their bits
// scrubbed from stored memberships via the recorded remap). With a single
// live stream one dead slot survives, scrubbed, to keep the edge a channel.
func (p *Physical) compactEdge(e *Edge, live int) {
	table := make([]int, len(e.Streams))
	kept := make([]*StreamRef, 0, live+1)
	pad := 0
	if live < 2 {
		pad = 2 - live
	}
	for i, s := range e.Streams {
		if s.Dead {
			if pad > 0 {
				// Tombstone kept for channel-ness; its stored bits are
				// scrubbed (no operator gates on a dead position).
				pad--
				table[i] = -1
				kept = append(kept, s)
				continue
			}
			table[i] = -1
			delete(p.streamEdge, s.ID)
			continue
		}
		table[i] = len(kept)
		kept = append(kept, s)
	}
	p.noteRemap(e.ID, table, e.Streams)
	e.Streams = kept
	// Re-lower everything wired to the channel: membership positions (and
	// the channel's width) changed.
	for _, s := range kept {
		if s.Dead {
			continue
		}
		if s.Producer != nil {
			p.noteDirty(s.Producer.Node.ID)
		}
		for _, c := range p.consumersOf[s.ID] {
			p.noteDirty(c.Node.ID)
		}
	}
}

func removeOp(s []*Op, o *Op) []*Op {
	out := s[:0]
	for _, x := range s {
		if x != o {
			out = append(out, x)
		}
	}
	return out
}

func removeStream(s []*StreamRef, r *StreamRef) []*StreamRef {
	out := s[:0]
	for _, x := range s {
		if x != r {
			out = append(out, x)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

// Stats summarizes a plan.
type Stats struct {
	Queries  int
	Nodes    int
	Ops      int
	Edges    int
	Channels int // edges encoding >1 stream
	Streams  int
	// LiveSlots / TotalSlots measure channel membership width: live
	// streams vs total slots (including tombstones from live query
	// removal) summed over all channel edges. Compaction keeps
	// LiveSlots/TotalSlots ≥ 1/2 in steady state.
	LiveSlots  int
	TotalSlots int
	// ChannelWords is the membership storage width summed over channel
	// edges: ceil(TotalSlots/64) per channel. SpilledChannels counts
	// channels wider than one inline word — memberships on them live on
	// the heap and every Test costs a bounds-checked slice access, the
	// plan-level view of the engine_member_spills_total runtime counter.
	ChannelWords    int
	SpilledChannels int
	// BlockEdges counts edges statically capable of carrying columnar
	// blocks: every producer and every consumer is a source or selection
	// (the vectorized m-op kinds) and the channel width fits one inline
	// membership word. The engine additionally gates on per-instance
	// predicate kernelizability at lowering, so this is an upper bound on
	// the edges the block path actually uses.
	BlockEdges int
}

// Stats returns summary counts for the plan.
func (p *Physical) Stats() Stats {
	st := Stats{Queries: len(p.Queries), Nodes: len(p.Nodes), Edges: len(p.Edges)}
	for _, n := range p.Nodes {
		st.Ops += len(n.Ops)
	}
	for _, e := range p.Edges {
		live := e.LiveStreams()
		st.Streams += live
		if live > 1 {
			st.Channels++
		}
		if e.IsChannel() {
			st.LiveSlots += live
			st.TotalSlots += len(e.Streams)
			words := (len(e.Streams) + 63) / 64
			st.ChannelWords += words
			if words > 1 {
				st.SpilledChannels++
			}
		}
	}
	capable := make(map[int]bool, len(p.Edges))
	for _, e := range p.Edges {
		ok := len(e.Streams) <= 64
		for _, s := range e.Streams {
			if s.Producer != nil && s.Producer.Def.Kind != KindSource && s.Producer.Def.Kind != KindSelect {
				ok = false
				break
			}
		}
		capable[e.ID] = ok
	}
	for _, n := range p.Nodes {
		if n.Kind == KindSource || n.Kind == KindSelect {
			continue
		}
		for _, o := range n.Ops {
			for _, in := range o.In {
				if ed := p.streamEdge[in.ID]; ed != nil {
					capable[ed.ID] = false
				}
			}
		}
	}
	for _, ok := range capable {
		if ok {
			st.BlockEdges++
		}
	}
	return st
}

// Validate checks structural invariants: every op input stream is carried
// by an edge, every node's ops agree with its kind, every query has an
// output stream that exists, and the op graph is acyclic.
func (p *Physical) Validate() error {
	for _, n := range p.Nodes {
		for _, o := range n.Ops {
			if o.Node != n {
				return fmt.Errorf("op %d has stale node pointer", o.ID)
			}
			if o.Def.Kind != n.Kind {
				return fmt.Errorf("node %d kind %s holds op %d of kind %s", n.ID, n.Kind, o.ID, o.Def.Kind)
			}
			for _, in := range o.In {
				if p.streamEdge[in.ID] == nil {
					return fmt.Errorf("op %d reads stream %d with no edge", o.ID, in.ID)
				}
			}
			if o.Out != nil && p.streamEdge[o.Out.ID] == nil {
				return fmt.Errorf("op %d writes stream %d with no edge", o.ID, o.Out.ID)
			}
		}
	}
	for _, q := range p.Queries {
		out := p.outStream[q.ID]
		if out == nil {
			return fmt.Errorf("query %d has no output stream", q.ID)
		}
		if p.streamEdge[out.ID] == nil {
			return fmt.Errorf("query %d output stream %d has no edge", q.ID, out.ID)
		}
	}
	// Acyclicity over nodes via producer links.
	state := map[*Node]int{} // 0 unvisited, 1 in stack, 2 done
	var visit func(n *Node) error
	visit = func(n *Node) error {
		switch state[n] {
		case 1:
			return fmt.Errorf("cycle through node %d", n.ID)
		case 2:
			return nil
		}
		state[n] = 1
		for _, o := range n.Ops {
			for _, in := range o.In {
				if in.Producer != nil {
					if err := visit(in.Producer.Node); err != nil {
						return err
					}
				}
			}
		}
		state[n] = 2
		return nil
	}
	for _, n := range p.Nodes {
		if err := visit(n); err != nil {
			return err
		}
	}
	return nil
}

// String renders a compact plan description, deterministic across runs.
func (p *Physical) String() string {
	var b strings.Builder
	ids := make([]int, 0, len(p.Nodes))
	for id := range p.Nodes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		n := p.Nodes[id]
		fmt.Fprintf(&b, "node %d [%s] ops=%d\n", n.ID, n.Kind, len(n.Ops))
		for _, o := range n.Ops {
			ins := make([]string, len(o.In))
			for i, s := range o.In {
				ins[i] = fmt.Sprintf("s%d", s.ID)
			}
			fmt.Fprintf(&b, "  op %d q%d %s (%s) -> s%d\n",
				o.ID, o.QueryID, o.Def.Key(), strings.Join(ins, ","), o.Out.ID)
		}
	}
	eids := make([]int, 0, len(p.Edges))
	for id := range p.Edges {
		eids = append(eids, id)
	}
	sort.Ints(eids)
	for _, id := range eids {
		e := p.Edges[id]
		ss := make([]string, len(e.Streams))
		for i, s := range e.Streams {
			ss[i] = fmt.Sprintf("s%d", s.ID)
			if s.Dead {
				ss[i] += "†" // tombstoned by live query removal
			}
		}
		fmt.Fprintf(&b, "edge %d {%s}\n", e.ID, strings.Join(ss, ","))
	}
	return b.String()
}
