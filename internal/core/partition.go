package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
)

// This file implements the partitionability analysis behind the sharded
// runtime (package shard): given a physical plan, decide how each source
// stream's tuples can be routed across N independent engine replicas so
// that the union of the replicas' results equals the single-engine results.
//
// Every source is assigned one of four routing modes:
//
//   - PartitionHash: tuples go to shard hash(vals[Attr]) % N. Chosen when
//     the stateful operators reached by the source pair tuples on an
//     equi-attribute (the AI-index equi-join of Workloads 2/3), so tuples
//     that must meet co-locate.
//   - PartitionRoundRobin: tuples go to any single shard. Safe when the
//     source's tuples only create state that the other side's (broadcast)
//     tuples probe, or flow through stateless operators.
//   - PartitionMulticast: content-based routing for the probing side of
//     FR/AN-shaped sequence workloads (Workload 1). When every consumer
//     of the source is the right side of a sequence whose instances come
//     from a constant selection σ(src.a = c1), the instances of the
//     operator with right constant c3 live exactly on shard hash(c1), so
//     a tuple with vals[Attr] = c3 needs only the shards of its partner
//     constants — and a tuple no operator's constant matches reaches no
//     shard at all.
//   - PartitionBroadcast: tuples go to every shard. The safe fallback for
//     the probing side of unkeyed binary operators and for inputs of
//     unkeyed aggregates.
//
// A query whose output stream is produced identically on every shard
// (every contributing source broadcast) is a replicated sink: the merge
// layer counts it on shard 0 only.

// PartitionMode is a per-source shard routing mode.
type PartitionMode uint8

// Routing modes, from weakest to strongest distribution.
const (
	PartitionBroadcast PartitionMode = iota
	PartitionRoundRobin
	PartitionMulticast
	PartitionHash
)

// String returns the mode name.
func (m PartitionMode) String() string {
	switch m {
	case PartitionBroadcast:
		return "broadcast"
	case PartitionRoundRobin:
		return "round-robin"
	case PartitionMulticast:
		return "multicast"
	case PartitionHash:
		return "hash"
	}
	return fmt.Sprintf("mode(%d)", uint8(m))
}

// SourceRoute is the routing decision for one source stream.
type SourceRoute struct {
	Mode PartitionMode
	Attr int // hashed (Hash) or table-probed (Multicast) attribute

	// Multicast routing data (Mode == PartitionMulticast): a tuple is
	// routed to the shards owning hash(p) for every partner constant p in
	// Table[vals[Attr]] and in Always; the partner constants are hashed
	// exactly like the partner source's Hash attribute. A value absent
	// from Table (with empty Always) reaches no shard.
	Table  map[int64][]int64
	Always []int64
}

// PartitionPlan is the result of the analysis: per-source routes plus the
// set of queries whose results are replicated on every shard.
type PartitionPlan struct {
	Routes map[string]SourceRoute
	// ReplicatedSinks maps query IDs whose output stream is identical on
	// every shard; the merge layer must count them on one shard only.
	ReplicatedSinks map[int]bool
	// Parallel reports whether at least one source is actually
	// partitioned; when false, sharding degenerates to replication.
	Parallel bool
	// Table is the versioned key-placement overlay (see rebalance.go): it
	// relocates or splits individual hash keys away from their default
	// ShardOfKey placement. nil means pure hashing (version 0).
	Table *RoutingTable
}

// String renders the partition plan for inspection.
func (pp *PartitionPlan) String() string {
	names := make([]string, 0, len(pp.Routes))
	for n := range pp.Routes {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		r := pp.Routes[n]
		switch r.Mode {
		case PartitionHash:
			fmt.Fprintf(&b, "%s: hash(a%d)\n", n, r.Attr)
		case PartitionMulticast:
			fmt.Fprintf(&b, "%s: multicast(a%d, %d keys, %d always)\n", n, r.Attr, len(r.Table), len(r.Always))
		default:
			fmt.Fprintf(&b, "%s: %s\n", n, r.Mode)
		}
	}
	if len(pp.ReplicatedSinks) > 0 {
		ids := make([]int, 0, len(pp.ReplicatedSinks))
		for id := range pp.ReplicatedSinks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		fmt.Fprintf(&b, "replicated sinks: %v\n", ids)
	}
	return b.String()
}

// partKind is the distribution status of a stream under a candidate route
// assignment.
type partKind uint8

const (
	pRepl  partKind = iota // every shard sees the full stream
	pAny                   // each tuple on exactly one shard, unkeyed
	pAttr                  // each tuple on the shard of hash(vals[attr])
	pMulti                 // content-routed probe stream (multicast source)
)

type partStatus struct {
	kind partKind
	attr int
}

// analysis carries the per-plan state of one AnalyzePartition run.
type analysis struct {
	p       *Physical
	lineage map[int][]string // stream ID → sorted source names feeding it
	// multicastTried guards against re-proposing multicast for a source
	// after a later conflict demoted it.
	multicastTried map[string]bool
}

// AnalyzePartition computes a safe shard routing for the plan's sources.
// The result is deterministic for a given plan.
func AnalyzePartition(p *Physical) *PartitionPlan {
	a := &analysis{p: p, lineage: make(map[int][]string), multicastTried: make(map[string]bool)}

	// Phase 1: propose hash attributes from equi-join constraints.
	modes := a.proposeRoutes()

	// Phase 2: verify; on a conflict, first try upgrading the offending
	// probe source to multicast routing, otherwise demote the offending
	// input's sources to broadcast, and retry. Multicast upgrades happen
	// at most once per source and each demotion strictly grows the
	// broadcast set, so the loop terminates.
	for range 2*len(modes) + 2 {
		demote, changed := a.verify(modes)
		if changed {
			continue
		}
		if demote == nil {
			break
		}
		progressed := false
		for _, src := range demote {
			if modes[src].Mode != PartitionBroadcast {
				modes[src] = SourceRoute{Mode: PartitionBroadcast}
				progressed = true
			}
		}
		if !progressed {
			// The conflicting input is already fully broadcast; the plan
			// cannot be partitioned at all.
			for src := range modes {
				modes[src] = SourceRoute{Mode: PartitionBroadcast}
			}
			break
		}
	}

	pp := &PartitionPlan{Routes: modes, ReplicatedSinks: make(map[int]bool)}
	status := make(map[int]partStatus)
	for _, q := range p.Queries {
		out := p.OutputOf(q.ID)
		if st, ok := a.status(out, modes, status); ok && st.kind == pRepl {
			pp.ReplicatedSinks[q.ID] = true
		}
	}
	for _, r := range modes {
		if r.Mode != PartitionBroadcast {
			pp.Parallel = true
		}
	}
	return pp
}

// ExtendPartition incrementally updates a partition plan after a live
// query delta. Sources that were routed before keep their mode and
// attribute — the operator state already distributed across the shards is
// only correct under the routes it was built with — while their multicast
// tables and Always lists are rebuilt from the current consumers (new
// partner constants appear, constants of removed operators are pruned).
// Only sources new to the plan receive fresh routes. ReplicatedSinks is
// recomputed for the current query set.
//
// When the grown plan cannot be served without re-routing an existing
// source (e.g. a new query needs a broadcast of a currently partitioned
// stream), ExtendPartition returns an error and the caller must reject
// the live operation; serving such a query requires an offline restart.
func ExtendPartition(p *Physical, prev *PartitionPlan) (*PartitionPlan, error) {
	a := &analysis{p: p, lineage: make(map[int][]string), multicastTried: make(map[string]bool)}
	modes := a.proposeRoutes()
	pinned := make(map[string]bool, len(prev.Routes))
	for name, r := range prev.Routes {
		if p.SourceStream(name) == nil {
			continue
		}
		pinned[name] = true
		a.multicastTried[name] = true // verify must not re-route pinned sources
		if r.Mode != PartitionMulticast {
			modes[name] = SourceRoute{Mode: r.Mode, Attr: r.Attr}
			continue
		}
		if len(p.Consumers(p.SourceStream(name))) == 0 {
			if len(p.OutputQueries(p.SourceStream(name))) > 0 {
				// A query reads the multicast source directly: its tuples
				// must reach a shard, which the drop-at-router route cannot
				// provide without re-routing the pinned source.
				return nil, fmt.Errorf("core: live query reads multicast source %q directly; re-optimize offline", name)
			}
			// Every consumer was removed: keep the multicast mode with an
			// empty table — future tuples are dropped at the router.
			modes[name] = SourceRoute{Mode: PartitionMulticast, Attr: r.Attr, Table: map[int64][]int64{}}
			continue
		}
		srcL, lAttr, rAttr, table, always, ok := a.multicastTable(p.SourceStream(name))
		if !ok {
			return nil, fmt.Errorf("core: source %q no longer qualifies for its multicast route; re-optimize offline", name)
		}
		if lm, exists := prev.Routes[srcL]; !exists || lm.Mode != PartitionHash || lm.Attr != lAttr {
			return nil, fmt.Errorf("core: multicast source %q now pairs against %q(a%d), conflicting with its pinned route", name, srcL, lAttr)
		}
		if rAttr != r.Attr && len(table) > 0 {
			return nil, fmt.Errorf("core: multicast source %q changed its probed attribute (a%d -> a%d)", name, r.Attr, rAttr)
		}
		modes[name] = SourceRoute{Mode: PartitionMulticast, Attr: r.Attr, Table: table, Always: always}
	}
	for range 2*len(modes) + 2 {
		demote, changed := a.verify(modes)
		if changed {
			continue
		}
		if demote == nil {
			break
		}
		progressed := false
		for _, src := range demote {
			if pinned[src] {
				return nil, fmt.Errorf("core: live delta requires re-routing pinned source %q (%s); re-optimize offline",
					src, modes[src].Mode)
			}
			if modes[src].Mode != PartitionBroadcast {
				modes[src] = SourceRoute{Mode: PartitionBroadcast}
				progressed = true
			}
		}
		if !progressed {
			return nil, fmt.Errorf("core: plan is not partitionable under the pinned routes; re-optimize offline")
		}
	}
	// Defense in depth: a pinned source's mode/attr must have survived
	// verification untouched (tryMulticast is blocked above, but a future
	// verify path could mutate modes).
	for name := range pinned {
		old, now := prev.Routes[name], modes[name]
		if now.Mode != old.Mode {
			return nil, fmt.Errorf("core: pinned source %q changed mode %s -> %s", name, old.Mode, now.Mode)
		}
		if (now.Mode == PartitionHash || now.Mode == PartitionMulticast) && now.Attr != old.Attr {
			return nil, fmt.Errorf("core: pinned source %q changed attribute a%d -> a%d", name, old.Attr, now.Attr)
		}
	}
	// The key-placement overlay travels with the pinned routes: the
	// distributed state sits where the moves put it.
	pp := &PartitionPlan{Routes: modes, ReplicatedSinks: make(map[int]bool), Table: prev.Table}
	status := make(map[int]partStatus)
	for _, q := range p.Queries {
		out := p.OutputOf(q.ID)
		if st, ok := a.status(out, modes, status); ok && st.kind == pRepl {
			pp.ReplicatedSinks[q.ID] = true
		}
	}
	for _, r := range modes {
		if r.Mode != PartitionBroadcast {
			pp.Parallel = true
		}
	}
	return pp, nil
}

// sortedSources returns the plan's used source names in sorted order.
func (a *analysis) sortedSources() []string {
	var names []string
	for name := range a.p.Catalog {
		if a.p.SourceStream(name) != nil {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// sortedNodes returns the plan's nodes in ID order.
func (a *analysis) sortedNodes() []*Node {
	nodes := make([]*Node, 0, len(a.p.Nodes))
	for _, n := range a.p.Nodes {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	return nodes
}

// proposeRoutes assigns initial routes: hash attributes inferred from
// resolvable equi-join and group-by constraints (first-wins per source),
// round-robin otherwise.
func (a *analysis) proposeRoutes() map[string]SourceRoute {
	prefs := make(map[string]int)
	record := func(src string, attr int) {
		if _, ok := prefs[src]; !ok {
			prefs[src] = attr
		}
	}
	for _, n := range a.sortedNodes() {
		for _, o := range n.Ops {
			switch n.Kind {
			case KindJoin, KindSeq, KindMu:
				for _, pr := range eqPairs(o) {
					lsrc, lattr, lok := a.origin(o.In[0], pr[0])
					rsrc, rattr, rok := a.origin(o.In[1], pr[1])
					if lok && rok {
						record(lsrc, lattr)
						record(rsrc, rattr)
					}
				}
			case KindAgg:
				for _, g := range o.Def.GroupBy {
					if src, attr, ok := a.origin(o.In[0], g); ok {
						record(src, attr)
						break
					}
				}
			}
		}
	}
	modes := make(map[string]SourceRoute)
	for _, name := range a.sortedSources() {
		if attr, ok := prefs[name]; ok {
			modes[name] = SourceRoute{Mode: PartitionHash, Attr: attr}
		} else {
			modes[name] = SourceRoute{Mode: PartitionRoundRobin}
		}
	}
	return modes
}

// isSource reports whether s is a source stream (sources are produced by
// a KindSource op in the plan).
func isSource(s *StreamRef) bool {
	return s.Producer == nil || s.Producer.Def.Kind == KindSource
}

// origin traces the value at position attr of a stream back to a source
// attribute, through selections, pass-through projections, group-by
// columns and concatenating binary operators.
func (a *analysis) origin(s *StreamRef, attr int) (string, int, bool) {
	for {
		if attr < 0 || attr >= s.Schema.Arity() {
			return "", 0, false
		}
		if isSource(s) {
			return s.Source, attr, true
		}
		o := s.Producer
		switch o.Def.Kind {
		case KindSelect:
			s = o.In[0]
		case KindProject:
			col, ok := o.Def.Map.Cols[attr].(expr.Col)
			if !ok {
				return "", 0, false
			}
			s, attr = o.In[0], col.I
		case KindAgg:
			if attr >= len(o.Def.GroupBy) {
				return "", 0, false
			}
			s, attr = o.In[0], o.Def.GroupBy[attr]
		case KindJoin, KindSeq, KindMu:
			if l := o.In[0].Schema.Arity(); attr < l {
				s = o.In[0]
			} else {
				s, attr = o.In[1], attr-l
			}
		default:
			return "", 0, false
		}
	}
}

// eqPairs extracts the equi-join conjuncts (left attr, right attr) of a
// binary operator usable as co-location keys. For µ, only conjuncts over
// the immutable start part qualify (the instance key must survive
// rebinding), and the filter edge must provably keep the instance alive
// on every event that misses the key (see muKeySafe): an instance only
// sees its own shard's events, so an event that would delete it must
// either carry the key (co-located) or be a no-op.
func eqPairs(o *Op) [][2]int {
	if o.Def.Pred2 == nil {
		return nil
	}
	lArity := o.In[0].Schema.Arity()
	var out [][2]int
	add := func(p expr.Pred2) {
		if ac, ok := p.(expr.AttrCmp2); ok && ac.Op == expr.Eq && ac.L < lArity {
			if o.Def.Kind == KindMu && !muKeySafe(o, ac.L, ac.R) {
				return
			}
			out = append(out, [2]int{ac.L, ac.R})
		}
	}
	switch q := o.Def.Pred2.(type) {
	case expr.And2:
		for _, part := range q.Parts {
			add(part)
		}
	default:
		add(o.Def.Pred2)
	}
	return out
}

// muKeySafe reports whether a µ operator keyed on l[la] = r[ra] behaves
// identically when its events are partitioned by the key: an event that
// misses the key must traverse the filter edge (instance unchanged), not
// delete the instance. Recognized idioms: filter ≡ true, and the Cayuga
// negated-key filter ¬(l[la] = r[ra]).
func muKeySafe(o *Op, la, ra int) bool {
	switch f := o.Def.Filter2.(type) {
	case nil:
		return false
	case expr.True2:
		return true
	case expr.Not2:
		if ac, ok := f.P.(expr.AttrCmp2); ok && ac.Op == expr.Eq && ac.L == la && ac.R == ra {
			return true
		}
	}
	return false
}

// verify computes stream statuses under the candidate modes. It returns
// the lineage (source names) of the input that must be demoted to
// broadcast on a conflict, or changed=true when it instead upgraded the
// conflicting probe source to multicast routing (re-verify).
func (a *analysis) verify(modes map[string]SourceRoute) (demote []string, changed bool) {
	status := make(map[int]partStatus)
	for _, n := range a.sortedNodes() {
		for _, o := range n.Ops {
			if n.Kind == KindSource {
				continue
			}
			if d := a.checkOp(o, modes, status); d != nil {
				if a.tryMulticast(o, modes) {
					return nil, true
				}
				return d, false
			}
		}
	}
	return nil, false
}

// checkOp validates one operator under the candidate modes, returning the
// sources to demote on a conflict.
func (a *analysis) checkOp(o *Op, modes map[string]SourceRoute, memo map[int]partStatus) []string {
	switch o.Def.Kind {
	case KindAgg:
		st, ok := a.status(o.In[0], modes, memo)
		if !ok {
			return a.sources(o.In[0])
		}
		if st.kind == pRepl {
			return nil
		}
		if st.kind == pAttr {
			for _, g := range o.Def.GroupBy {
				if g == st.attr {
					return nil
				}
			}
		}
		// Partitioned input whose partition key is not a group-by column:
		// group contributions would split across shards.
		return a.sources(o.In[0])
	case KindJoin, KindSeq, KindMu:
		ls, lok := a.status(o.In[0], modes, memo)
		rs, rok := a.status(o.In[1], modes, memo)
		if !lok {
			return a.sources(o.In[0])
		}
		if !rok {
			return a.sources(o.In[1])
		}
		if ls.kind == pMulti {
			return a.sources(o.In[0]) // multicast streams only probe
		}
		if rs.kind == pMulti {
			if a.multicastOpValid(o, modes, ls) {
				return nil
			}
			return a.sources(o.In[1])
		}
		if ls.kind == pRepl && rs.kind == pRepl {
			return nil
		}
		if ls.kind == pAttr && rs.kind == pAttr {
			for _, pr := range eqPairs(o) {
				if pr[0] == ls.attr && pr[1] == rs.attr {
					return nil // keyed: matching pairs co-locate
				}
			}
		}
		if rs.kind == pRepl {
			return nil // partitioned state, replicated probes
		}
		if ls.kind == pRepl && o.Def.Kind == KindJoin {
			// Replicated buffer, partitioned probes: every pair appears
			// exactly once, on the probing tuple's shard. Only sound for
			// joins (all pairs emitted): a sequence consumes its instance
			// at the first match and a µ chain must consume every
			// matching event, so each shard's replica would react to its
			// own shard's events instead of the global stream.
			return nil
		}
		return a.sources(o.In[1])
	}
	return nil
}

// multicastSpec is the FR/AN shape of one sequence operator that enables
// multicast routing of its right source: instances come from a constant
// selection over a hashable left source attribute, and (optionally) the
// operator only fires for one right-side constant.
type multicastSpec struct {
	srcL  string // left source
	lAttr int    // left source attribute the selection constant binds
	c1    int64  // selection constant (instances live on hash(c1))
	rAttr int    // right-side constant attribute, -1 if none
	c3    int64  // right-side constant
}

// multicastOpSpec extracts the FR/AN shape of a sequence operator, or
// ok=false when the operator does not qualify. The right input must be
// the source stream itself.
func (a *analysis) multicastOpSpec(o *Op) (multicastSpec, bool) {
	var spec multicastSpec
	if o.Def.Kind != KindSeq || !isSource(o.In[1]) {
		return spec, false
	}
	ls := o.In[0]
	if isSource(ls) || ls.Producer == nil || ls.Producer.Def.Kind != KindSelect {
		return spec, false
	}
	sel := ls.Producer
	attrL, c1, _, ok := expr.IndexableEq(sel.Def.Pred)
	if !ok {
		return spec, false
	}
	srcL, lAttr, ok := a.origin(sel.In[0], attrL)
	if !ok || srcL == o.In[1].Source {
		return spec, false
	}
	spec.srcL, spec.lAttr, spec.c1 = srcL, lAttr, c1
	spec.rAttr = -1
	if rA, c3, _, ok := expr.RightIndexableEq(o.Def.Pred2); ok {
		spec.rAttr, spec.c3 = rA, c3
	}
	return spec, true
}

// multicastOpValid re-checks, under the current modes, that a sequence op
// reading a multicast source is still covered by the source's routing
// table and that its instance side is hash-partitioned consistently.
func (a *analysis) multicastOpValid(o *Op, modes map[string]SourceRoute, ls partStatus) bool {
	spec, ok := a.multicastOpSpec(o)
	if !ok {
		return false
	}
	if lm := modes[spec.srcL]; lm.Mode != PartitionHash || lm.Attr != spec.lAttr {
		return false
	}
	if ls.kind != pAttr {
		return false
	}
	route := modes[o.In[1].Source]
	if spec.rAttr < 0 {
		return containsKey(route.Always, spec.c1)
	}
	if route.Attr != spec.rAttr {
		return false
	}
	return containsKey(route.Table[spec.c3], spec.c1)
}

func containsKey(keys []int64, k int64) bool {
	for _, v := range keys {
		if v == k {
			return true
		}
	}
	return false
}

// multicastTable scans every consumer of a source stream and builds the
// content-based routing table: each consumer must be a qualifying FR/AN
// sequence over one common left source (see multicastOpSpec). ok is false
// when any consumer disqualifies the source.
func (a *analysis) multicastTable(rStream *StreamRef) (srcL string, lAttr, rAttr int, table map[int64][]int64, always []int64, ok bool) {
	lAttr, rAttr = -1, -1
	if len(a.p.OutputQueries(rStream)) > 0 {
		return // a query reads the source directly
	}
	consumers := a.p.Consumers(rStream)
	if len(consumers) == 0 {
		return
	}
	table = make(map[int64][]int64)
	for _, c := range consumers {
		if c.In[len(c.In)-1] != rStream || (len(c.In) > 1 && c.In[0] == rStream) {
			return "", -1, -1, nil, nil, false // right side only
		}
		spec, specOK := a.multicastOpSpec(c)
		if !specOK {
			return "", -1, -1, nil, nil, false
		}
		if srcL == "" {
			srcL, lAttr = spec.srcL, spec.lAttr
		} else if srcL != spec.srcL || lAttr != spec.lAttr {
			return "", -1, -1, nil, nil, false
		}
		if spec.rAttr < 0 {
			always = appendKey(always, spec.c1)
			continue
		}
		if rAttr == -1 {
			rAttr = spec.rAttr
		} else if rAttr != spec.rAttr {
			return "", -1, -1, nil, nil, false
		}
		table[spec.c3] = appendKey(table[spec.c3], spec.c1)
	}
	if srcL == "" {
		return "", -1, -1, nil, nil, false
	}
	if rAttr == -1 {
		rAttr = 0 // Always-only routing; the probed attribute is unused
	}
	ok = true
	return
}

// tryMulticast attempts to resolve a probe-side conflict by routing the
// right source with a content-based multicast table: every consumer of
// the source must be a qualifying FR/AN sequence over one common left
// source, which is then hash-partitioned on the selection attribute.
func (a *analysis) tryMulticast(o *Op, modes map[string]SourceRoute) bool {
	if o.Def.Kind != KindSeq || !isSource(o.In[1]) {
		return false
	}
	rStream := o.In[1]
	srcR := rStream.Source
	if a.multicastTried[srcR] || modes[srcR].Mode == PartitionMulticast {
		return false
	}
	a.multicastTried[srcR] = true
	srcL, lAttr, rAttr, table, always, ok := a.multicastTable(rStream)
	if !ok {
		return false
	}
	// The instance side must hash on the selection attribute.
	switch cur := modes[srcL]; {
	case cur.Mode == PartitionHash && cur.Attr != lAttr:
		return false
	case cur.Mode == PartitionBroadcast || cur.Mode == PartitionMulticast:
		return false
	}
	modes[srcL] = SourceRoute{Mode: PartitionHash, Attr: lAttr}
	modes[srcR] = SourceRoute{Mode: PartitionMulticast, Attr: rAttr, Table: table, Always: always}
	return true
}

// appendKey adds k to keys if absent (small sets; partner lists stay
// deduplicated and deterministic).
func appendKey(keys []int64, k int64) []int64 {
	if containsKey(keys, k) {
		return keys
	}
	return append(keys, k)
}

// status computes the distribution status of a stream under the candidate
// modes. ok is false when a status cannot be derived (the caller then
// demotes the stream's lineage, making it pRepl).
func (a *analysis) status(s *StreamRef, modes map[string]SourceRoute, memo map[int]partStatus) (partStatus, bool) {
	if st, ok := memo[s.ID]; ok {
		return st, true
	}
	st, ok := a.statusUncached(s, modes, memo)
	if ok {
		memo[s.ID] = st
	}
	return st, ok
}

func (a *analysis) statusUncached(s *StreamRef, modes map[string]SourceRoute, memo map[int]partStatus) (partStatus, bool) {
	if isSource(s) {
		r := modes[s.Source]
		switch r.Mode {
		case PartitionHash:
			return partStatus{kind: pAttr, attr: r.Attr}, true
		case PartitionRoundRobin:
			return partStatus{kind: pAny}, true
		case PartitionMulticast:
			return partStatus{kind: pMulti}, true
		default:
			return partStatus{kind: pRepl}, true
		}
	}
	o := s.Producer
	switch o.Def.Kind {
	case KindSelect:
		return a.status(o.In[0], modes, memo)
	case KindProject:
		in, ok := a.status(o.In[0], modes, memo)
		if !ok {
			return partStatus{}, false
		}
		if in.kind != pAttr {
			return in, true
		}
		for j, c := range o.Def.Map.Cols {
			if col, isCol := c.(expr.Col); isCol && col.I == in.attr {
				return partStatus{kind: pAttr, attr: j}, true
			}
		}
		return partStatus{kind: pAny}, true
	case KindAgg:
		in, ok := a.status(o.In[0], modes, memo)
		if !ok {
			return partStatus{}, false
		}
		if in.kind == pRepl {
			return in, true
		}
		if in.kind == pAttr {
			for j, g := range o.Def.GroupBy {
				if g == in.attr {
					return partStatus{kind: pAttr, attr: j}, true
				}
			}
		}
		return partStatus{}, false // checkOp reports the conflict
	case KindJoin, KindSeq, KindMu:
		ls, lok := a.status(o.In[0], modes, memo)
		rs, rok := a.status(o.In[1], modes, memo)
		if !lok || !rok || ls.kind == pMulti {
			return partStatus{}, false
		}
		if rs.kind == pMulti {
			// Probes of a multicast source pair with hash-partitioned
			// instances; outputs live on the instance's shard (checkOp
			// validates coverage).
			return ls, true
		}
		lArity := o.In[0].Schema.Arity()
		switch {
		case ls.kind == pRepl && rs.kind == pRepl:
			return partStatus{kind: pRepl}, true
		case ls.kind == pAttr && rs.kind == pAttr:
			for _, pr := range eqPairs(o) {
				if pr[0] == ls.attr && pr[1] == rs.attr {
					return partStatus{kind: pAttr, attr: ls.attr}, true
				}
			}
			return partStatus{}, false
		case rs.kind == pRepl:
			return ls, true // output carries the left status positions
		case ls.kind == pRepl && o.Def.Kind == KindJoin:
			if rs.kind == pAttr {
				return partStatus{kind: pAttr, attr: lArity + rs.attr}, true
			}
			return partStatus{kind: pAny}, true
		default:
			return partStatus{}, false
		}
	}
	return partStatus{}, false
}

// sources returns the sorted source names in the lineage of a stream.
func (a *analysis) sources(s *StreamRef) []string {
	if names, ok := a.lineage[s.ID]; ok {
		return names
	}
	set := make(map[string]bool)
	var walk func(s *StreamRef)
	seen := make(map[int]bool)
	walk = func(s *StreamRef) {
		if seen[s.ID] {
			return
		}
		seen[s.ID] = true
		if isSource(s) {
			set[s.Source] = true
			return
		}
		for _, in := range s.Producer.In {
			walk(in)
		}
	}
	walk(s)
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	a.lineage[s.ID] = names
	return names
}
