package rumor_test

import (
	"fmt"
	"testing"

	rumor "repro"
	"repro/internal/expr"
	"repro/internal/workload"
)

// Full-window state replay on live re-merge: a query added mid-stream into
// an existing shared channel-mode stateful group must produce, from its
// first batch onward, exactly the results the from-scratch plan produces —
// whenever the shared store covers the new member's gating (here: range
// selections, the live member's predicate implying coverage of the
// newcomer's). The tests drive seq, join, and agg groups through the
// single engine and the sharded runtime (1/2/4 shards).

// replaySys is the surface the replay harness needs.
type replaySys interface {
	DeclareStream(name, sharableLabel string, attrs ...string) error
	AddQuery(name string, root *rumor.Logical) error
	AddQueryLive(name string, root *rumor.Logical) error
	RemoveQuery(name string) error
	Optimize(opt rumor.Options) error
	Push(streamName string, ts int64, vals ...int64) error
	ResultCount(query string) int64
}

// replayEvents generates interleaved S/T tuples: a0 drawn from a small
// domain (so equi-matches are dense), a1 from [0,1000) (the range-gating
// attribute). The agg shape scans only S, so its event stream drops T.
func replayEvents(shape string, n int, seed int64) []workload.Event {
	p := workload.DefaultParams()
	p.Seed = seed
	p.ConstDomain = 1000
	events := p.GenStreams(n)
	for _, ev := range events {
		ev.Tuple.Vals[0] %= 8 // dense join/seq keys
	}
	if shape == "agg" {
		kept := events[:0]
		for _, ev := range events {
			if ev.Source == "S" {
				kept = append(kept, ev)
			}
		}
		events = kept
	}
	return events
}

func declareST(t *testing.T, sys replaySys) {
	t.Helper()
	attrs := []string{"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9"}
	if err := sys.DeclareStream("S", "", attrs...); err != nil {
		t.Fatal(err)
	}
	if err := sys.DeclareStream("T", "", attrs...); err != nil {
		t.Fatal(err)
	}
}

// replayQuery builds one gated query of the given shape: a range selection
// σ(a1 > lo) over S feeding a windowed stateful operator against T (for
// agg, a plain sliding window over the selection).
func replayQuery(shape string, lo int64) *rumor.Logical {
	sel := rumor.Filter(expr.ConstCmp{Attr: 1, Op: expr.Gt, C: lo}, rumor.Scan("S"))
	pred := expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}
	const w = 512
	switch shape {
	case "seq":
		return rumor.Seq(pred, w, sel, rumor.Scan("T"))
	case "mu":
		rebind := expr.NewAnd2(
			expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0},
			expr.AttrCmp2{L: 11, Op: expr.Lt, R: 1}, // last.a1 < T.a1
		)
		return rumor.Mu(rebind, expr.Not2{P: expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}}, w, sel, rumor.Scan("T"))
	case "join":
		return rumor.Join(pred, w, sel, rumor.Scan("T"))
	case "agg":
		// groupBy a0, aggregate a1: the gating predicate (over a1) stays
		// evaluable against the window's stored columns.
		return rumor.Agg(rumor.Sum, 1, w, []int{0}, sel)
	}
	panic("unknown shape " + shape)
}

// runReplay drives one scenario: two base queries (a1>100, a1>200) are
// optimized with channels; events[:cut] flow; then a third query (a1>300,
// covered by both) joins live — and from that point on its results must
// match a from-scratch plan that knew it all along.
func runReplay(t *testing.T, shape string, mk func() replaySys, drain func()) {
	t.Helper()
	events := replayEvents(shape, 3000, 11)
	cut := len(events) / 2

	sys := mk()
	declareST(t, sys)
	for i, lo := range []int64{100, 200} {
		if err := sys.AddQuery(fmt.Sprintf("base_%d", i), replayQuery(shape, lo)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[:cut] {
		if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.AddQueryLive("late", replayQuery(shape, 300)); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[cut:] {
		if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	drain()

	// Reference A: from-scratch with all three queries, full stream.
	ref := rumor.New()
	declareST(t, ref)
	for i, lo := range []int64{100, 200} {
		if err := ref.AddQuery(fmt.Sprintf("base_%d", i), replayQuery(shape, lo)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.AddQuery("late", replayQuery(shape, 300)); err != nil {
		t.Fatal(err)
	}
	if err := ref.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	// Reference B: the same plan over only the pre-add prefix, to isolate
	// the results "late" would have produced before it subscribed.
	pre := rumor.New()
	declareST(t, pre)
	for i, lo := range []int64{100, 200} {
		if err := pre.AddQuery(fmt.Sprintf("base_%d", i), replayQuery(shape, lo)); err != nil {
			t.Fatal(err)
		}
	}
	if err := pre.AddQuery("late", replayQuery(shape, 300)); err != nil {
		t.Fatal(err)
	}
	if err := pre.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events[:cut] {
		if err := pre.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range events {
		if err := ref.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}

	for i := range 2 {
		name := fmt.Sprintf("base_%d", i)
		if got, want := sys.ResultCount(name), ref.ResultCount(name); got != want {
			t.Errorf("%s: %d results, from-scratch %d", name, got, want)
		}
	}
	// The late subscriber's post-add results must equal the from-scratch
	// plan's post-add results: full-window replay, not a cold start.
	got := sys.ResultCount("late")
	want := ref.ResultCount("late") - pre.ResultCount("late")
	if got != want {
		t.Fatalf("late query: %d results after live add, from-scratch produces %d after the same point", got, want)
	}
	if want == 0 {
		t.Fatal("late query produced no post-add results; the replay check is vacuous")
	}
}

func TestReplayOnRemergeSystem(t *testing.T) {
	for _, shape := range []string{"seq", "mu", "join", "agg"} {
		t.Run(shape, func(t *testing.T) {
			runReplay(t, shape, func() replaySys { return rumor.New() }, func() {})
		})
	}
}

func TestReplayOnRemergeSharded(t *testing.T) {
	for _, shape := range []string{"seq", "join", "agg"} {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", shape, shards), func(t *testing.T) {
				var sys *rumor.ShardedSystem
				runReplay(t, shape,
					func() replaySys {
						sys = rumor.NewSharded(rumor.ShardConfig{Shards: shards, BatchSize: 64})
						return sys
					},
					func() {
						if err := sys.Drain(); err != nil {
							t.Fatal(err)
						}
					})
				sys.Close()
			})
		}
	}
}

// TestReplayAfterSlotReuse drives the full churn-durability cycle on one
// query: subscribe, unsubscribe (slot tombstoned), re-subscribe (slot
// reused, stored bits scrubbed, window replayed). From the re-add on, the
// query must behave exactly as if it had never left — the shared store
// (gated by a surviving broader selection) retains everything its window
// needs, including tuples that arrived while it was away.
func TestReplayAfterSlotReuse(t *testing.T) {
	for _, shape := range []string{"seq", "join", "agg"} {
		t.Run(shape, func(t *testing.T) {
			events := replayEvents(shape, 4000, 17)
			third := len(events) / 3

			sys := rumor.New()
			declareST(t, sys)
			for i, lo := range []int64{100, 200} {
				if err := sys.AddQuery(fmt.Sprintf("base_%d", i), replayQuery(shape, lo)); err != nil {
					t.Fatal(err)
				}
			}
			if err := sys.AddQuery("cycled", replayQuery(shape, 300)); err != nil {
				t.Fatal(err)
			}
			if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
				t.Fatal(err)
			}
			slots := sys.PlanInfo().TotalSlots
			push := func(evs []workload.Event) {
				for _, ev := range evs {
					if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
						t.Fatal(err)
					}
				}
			}
			push(events[:third])
			if err := sys.RemoveQuery("cycled"); err != nil {
				t.Fatal(err)
			}
			push(events[third : 2*third])
			if err := sys.AddQueryLive("cycled", replayQuery(shape, 300)); err != nil {
				t.Fatal(err)
			}
			if got := sys.PlanInfo().TotalSlots; got != slots {
				t.Fatalf("membership slots grew across an add/remove/add cycle: %d -> %d", slots, got)
			}
			push(events[2*third:])

			// Reference: "cycled" subscribed the whole time; its results
			// after the re-add point must coincide.
			ref := rumor.New()
			declareST(t, ref)
			for i, lo := range []int64{100, 200} {
				if err := ref.AddQuery(fmt.Sprintf("base_%d", i), replayQuery(shape, lo)); err != nil {
					t.Fatal(err)
				}
			}
			if err := ref.AddQuery("cycled", replayQuery(shape, 300)); err != nil {
				t.Fatal(err)
			}
			if err := ref.Optimize(rumor.Options{Channels: true}); err != nil {
				t.Fatal(err)
			}
			var refAtReadd int64
			for i, ev := range events {
				if i == 2*third {
					refAtReadd = ref.ResultCount("cycled")
				}
				if err := ref.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
					t.Fatal(err)
				}
			}
			got := sys.ResultCount("cycled")
			want := ref.ResultCount("cycled") - refAtReadd
			if got != want {
				t.Fatalf("re-merged query: %d results after re-add, continuous subscription produces %d", got, want)
			}
			if want == 0 {
				t.Fatal("re-merged query produced no post-re-add results; check is vacuous")
			}
			for i := range 2 {
				name := fmt.Sprintf("base_%d", i)
				if got, want := sys.ResultCount(name), ref.ResultCount(name); got != want {
					t.Errorf("%s disturbed by the cycle: %d vs %d", name, got, want)
				}
			}
		})
	}
}
