package obshttp

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro"
)

// sampleSource builds a snapshot exercising every render path: plain and
// labeled scalars, and a histogram with observations in several buckets.
func sampleSource() (*rumor.Metrics, error) {
	h := rumor.Histogram{Count: 3, Sum: 1024 + 1023 + 1, Buckets: make([]int64, 32)}
	h.Buckets[1] = 1  // value 1
	h.Buckets[10] = 1 // value 1023
	h.Buckets[11] = 1 // value 1024
	return &rumor.Metrics{
		Counters: map[string]int64{
			"engine_tuples_delivered_total":   42,
			"shard_tuples_total{shard=\"0\"}": 21,
			"shard_tuples_total{shard=\"1\"}": 21,
		},
		Gauges: map[string]int64{
			"cluster_link_rtt_ns{shard=\"0\"}": 1500,
			"worker_boot_id":                   7,
		},
		Hists: map[string]rumor.Histogram{"shard_flush_ns": h},
	}, nil
}

var seriesRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?\d+)$`)

// parseProm validates the text exposition format line by line and returns
// the parsed series. Every series must belong to a family announced by a
// preceding TYPE line.
func parseProm(t *testing.T, text string) map[string]int64 {
	t.Helper()
	typed := map[string]string{}
	series := map[string]int64{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			if parts[3] != "counter" && parts[3] != "gauge" && parts[3] != "histogram" {
				t.Fatalf("line %d: unknown type %q", ln+1, parts[3])
			}
			if _, dup := typed[parts[2]]; dup {
				t.Fatalf("line %d: duplicate TYPE for %q", ln+1, parts[2])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		m := seriesRe.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("line %d: malformed series line %q", ln+1, line)
		}
		fam := m[1]
		if typ, ok := typed[fam]; !ok {
			// histogram children: name_bucket/_sum/_count under the base TYPE
			base := fam
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if b, found := strings.CutSuffix(fam, suf); found {
					base = b
					break
				}
			}
			if typed[base] != "histogram" {
				t.Fatalf("line %d: series %q has no TYPE line", ln+1, fam)
			}
		} else if typ == "histogram" {
			t.Fatalf("line %d: bare series %q for histogram family", ln+1, fam)
		}
		v, err := strconv.ParseInt(m[3], 10, 64)
		if err != nil {
			t.Fatalf("line %d: value %q: %v", ln+1, m[3], err)
		}
		series[m[1]+m[2]] = v
	}
	return series
}

func TestWritePromValid(t *testing.T) {
	m, _ := sampleSource()
	var b strings.Builder
	WriteProm(&b, m)
	series := parseProm(t, b.String())

	if got := series["engine_tuples_delivered_total"]; got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	if got := series[`shard_tuples_total{shard="1"}`]; got != 21 {
		t.Fatalf("labeled counter = %d, want 21", got)
	}
	if got := series[`cluster_link_rtt_ns{shard="0"}`]; got != 1500 {
		t.Fatalf("labeled gauge = %d, want 1500", got)
	}
	// Histogram: cumulative buckets, +Inf equals count.
	if got := series[`shard_flush_ns_bucket{le="1"}`]; got != 1 {
		t.Fatalf("le=1 bucket = %d, want 1", got)
	}
	if got := series[`shard_flush_ns_bucket{le="1023"}`]; got != 2 {
		t.Fatalf("le=1023 bucket = %d, want cumulative 2", got)
	}
	if got := series[`shard_flush_ns_bucket{le="+Inf"}`]; got != 3 {
		t.Fatalf("le=+Inf bucket = %d, want 3", got)
	}
	if got := series["shard_flush_ns_count"]; got != 3 {
		t.Fatalf("count = %d, want 3", got)
	}
	if got := series["shard_flush_ns_sum"]; got != 2048 {
		t.Fatalf("sum = %d, want 2048", got)
	}
	// Cumulative buckets never decrease.
	prev := int64(0)
	for i := 0; ; i++ {
		bound := rumor.HistogramBucketBound(i)
		if bound < 0 {
			break
		}
		key := fmt.Sprintf(`shard_flush_ns_bucket{le="%d"}`, bound)
		if v, ok := series[key]; ok {
			if v < prev {
				t.Fatalf("bucket %s = %d decreased below %d", key, v, prev)
			}
			prev = v
		}
	}
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(Handler(sampleSource))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	parseProm(t, string(body))

	resp, err = http.Get(srv.URL + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	var events []rumor.TraceEvent
	if err := json.NewDecoder(resp.Body).Decode(&events); err != nil {
		t.Fatalf("/trace decode: %v", err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	vars, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var decoded map[string]any
	if err := json.Unmarshal(vars, &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := decoded["rumor"]; !ok {
		t.Fatalf("/debug/vars missing the rumor var")
	}
}

func TestStartBindsAndServes(t *testing.T) {
	srv, err := Start("127.0.0.1:0", sampleSource)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	parseProm(t, string(body))
}
