// Package obshttp exposes RUMOR telemetry over HTTP: a Prometheus
// text-format scrape endpoint, the expvar JSON dump, the lifecycle trace
// ring, and net/http/pprof — everything an operator points a scraper or a
// profiler at. The package is glue only: it renders whatever snapshot the
// configured Source returns and holds no state of its own, so one handler
// can front a local System, a sharded coordinator, or a worker process
// (cmd/rumornode and cmd/rumorcli wire it behind -metrics).
//
// Endpoints under the returned handler:
//
//	/metrics       Prometheus text format (counters, gauges, histograms)
//	/trace         lifecycle trace ring as JSON, oldest event first
//	/debug/vars    expvar (includes a "rumor" var with the same snapshot)
//	/debug/pprof/  standard pprof index, profile, heap, etc.
package obshttp

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"

	"repro"
)

// Source produces the snapshot a scrape renders. It is called once per
// request; implementations decide what merging costs (ShardedSystem
// .Metrics takes a quiesce barrier, ShardWorker.Metrics is lock-free).
type Source func() (*rumor.Metrics, error)

// expvarOnce guards the process-wide expvar registration: expvar.Publish
// panics on duplicate names, and tests build several handlers.
var (
	expvarOnce sync.Once
	expvarMu   sync.Mutex
	expvarSrc  Source
)

// Handler returns an HTTP handler serving the telemetry endpoints from
// src. A nil src serves empty snapshots (the trace and pprof endpoints
// still work).
func Handler(src Source) http.Handler {
	if src == nil {
		src = func() (*rumor.Metrics, error) { return &rumor.Metrics{}, nil }
	}
	expvarMu.Lock()
	expvarSrc = src
	expvarMu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("rumor", expvar.Func(func() any {
			expvarMu.Lock()
			s := expvarSrc
			expvarMu.Unlock()
			m, err := s()
			if err != nil {
				return map[string]string{"error": err.Error()}
			}
			return m
		}))
	})
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		m, err := src()
		if err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w, m)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(rumor.TraceEvents())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// baseName strips a label suffix: "x{shard=\"0\"}" → "x". TYPE lines name
// the metric family, not the labeled series.
func baseName(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WriteProm renders m in the Prometheus text exposition format, families
// sorted by name, one TYPE line per family. Histograms render cumulative
// le buckets over the registry's power-of-two layout plus +Inf, _sum, and
// _count.
func WriteProm(w io.Writer, m *rumor.Metrics) {
	writeScalars(w, m.Counters, "counter")
	writeScalars(w, m.Gauges, "gauge")
	names := make([]string, 0, len(m.Hists))
	for name := range m.Hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := m.Hists[name]
		base := baseName(name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", base)
		cum := int64(0)
		for i, n := range h.Buckets {
			cum += n
			bound := rumor.HistogramBucketBound(i)
			if bound < 0 {
				break // +Inf bucket rendered below from the total count
			}
			fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", base, bound, cum)
		}
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", base, h.Count)
		fmt.Fprintf(w, "%s_sum %d\n", base, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", base, h.Count)
	}
}

// writeScalars renders one scalar family set (counters or gauges) sorted
// by name, emitting the TYPE line once per family — labeled series of one
// family sort adjacently, so a family change is a base-name change.
func writeScalars(w io.Writer, vals map[string]int64, typ string) {
	names := make([]string, 0, len(vals))
	for name := range vals {
		names = append(names, name)
	}
	sort.Strings(names)
	prevBase := ""
	for _, name := range names {
		base := baseName(name)
		if base != prevBase {
			fmt.Fprintf(w, "# TYPE %s %s\n", base, typ)
			prevBase = base
		}
		fmt.Fprintf(w, "%s %d\n", name, vals[name])
	}
}

// Server is a running telemetry listener.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the listener.
func (s *Server) Close() error { return s.srv.Close() }

// Start listens on addr and serves Handler(src) until Close. It returns
// as soon as the listener is bound; serving continues in a background
// goroutine.
func Start(addr string, src Source) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(src)}
	go srv.Serve(lis)
	return &Server{lis: lis, srv: srv}, nil
}
