package rumor_test

import (
	"bytes"
	"fmt"
	"testing"

	rumor "repro"
	"repro/internal/workload"
)

// Block-vs-scalar equivalence at the system level: the identical columnar
// feed must produce identical per-query result counts whether the block
// path is disabled (scalar baseline), enabled at any block size, and
// whether the plan runs single-threaded or sharded — including under live
// query churn (ApplyDelta barriers between in-flight blocks) and across a
// checkpoint/restore taken while column runs are still queued.

// colPusher is the columnar ingest surface shared by System and
// ShardedSystem.
type colPusher interface {
	PushColumns(streamName string, ts []int64, cols [][]int64) error
	SetBlockSize(n int) error
}

// pushWindows drives events window by window: within each window the
// per-source runs are transposed into one PushColumns call each, preserving
// per-source timestamp order. Every engine under comparison gets this exact
// feed, so grouping is part of the input, not of the system under test.
func pushWindows(t *testing.T, sys colPusher, events []workload.Event, window int) {
	t.Helper()
	for off := 0; off < len(events); off += window {
		end := min(off+window, len(events))
		pushWindow(t, sys, events[off:end])
	}
}

func pushWindow(t *testing.T, sys colPusher, events []workload.Event) {
	t.Helper()
	bySource := map[string][]int{}
	var order []string
	for i, ev := range events {
		if bySource[ev.Source] == nil {
			order = append(order, ev.Source)
		}
		bySource[ev.Source] = append(bySource[ev.Source], i)
	}
	for _, src := range order {
		idx := bySource[src]
		arity := len(events[idx[0]].Tuple.Vals)
		ts := make([]int64, len(idx))
		cols := make([][]int64, arity)
		for a := range cols {
			cols[a] = make([]int64, len(idx))
		}
		for row, i := range idx {
			ts[row] = events[i].Tuple.TS
			for a, v := range events[i].Tuple.Vals {
				cols[a][row] = v
			}
		}
		if err := sys.PushColumns(src, ts, cols); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBlockShardedEquivalenceMatrix: Workloads 1–3 × shards 1/2/4 ×
// channels on/off × block sizes. The reference is a single-threaded System
// with the block path disabled, fed the identical columnar windows.
func TestBlockShardedEquivalenceMatrix(t *testing.T) {
	for _, wl := range []string{"w1", "w2", "w3"} {
		for _, channels := range []bool{false, true} {
			catalog, qs, events := churnWorkload(t, wl, 30, 3600, 2)

			ref := rumor.New()
			declareAll(t, ref, catalog)
			for _, q := range qs {
				if err := ref.AddQuery(q.Name, q.Root); err != nil {
					t.Fatal(err)
				}
			}
			if err := ref.Optimize(rumor.Options{Channels: channels}); err != nil {
				t.Fatal(err)
			}
			if err := ref.SetBlockSize(-1); err != nil {
				t.Fatal(err)
			}
			pushWindows(t, ref, events, 100)
			if ref.TotalResults() == 0 {
				t.Fatalf("%s channels=%v: no results; matrix is vacuous", wl, channels)
			}

			for _, shards := range []int{1, 2, 4} {
				for _, bs := range []int{1, 64, 256} {
					t.Run(fmt.Sprintf("%s/channels=%v/shards=%d/block=%d", wl, channels, shards, bs), func(t *testing.T) {
						sys := rumor.NewSharded(rumor.ShardConfig{Shards: shards, BatchSize: 16})
						defer sys.Close()
						declareAll(t, sys, catalog)
						for _, q := range qs {
							if err := sys.AddQuery(q.Name, q.Root); err != nil {
								t.Fatal(err)
							}
						}
						if err := sys.Optimize(rumor.Options{Channels: channels}); err != nil {
							t.Fatal(err)
						}
						if err := sys.SetBlockSize(bs); err != nil {
							t.Fatal(err)
						}
						pushWindows(t, sys, events, 100)
						if err := sys.Drain(); err != nil {
							t.Fatal(err)
						}
						for _, q := range qs {
							if got, want := sys.ResultCount(q.Name), ref.ResultCount(q.Name); got != want {
								t.Fatalf("query %s: %d results, scalar reference %d", q.Name, got, want)
							}
						}
					})
				}
			}
		}
	}
}

// TestBlockChurnEquivalence interleaves live query add/remove (ApplyDelta
// barriers) with columnar pushes on the block path, on both the System and
// a sharded deployment. Survivor counts must match a from-scratch scalar
// run that planned only the survivors.
func TestBlockChurnEquivalence(t *testing.T) {
	catalog, surv, events := churnWorkload(t, "w2", 30, 4200, 1)
	_, trans, _ := churnWorkload(t, "w2", 30, 0, 99)

	ref := rumor.New()
	declareAll(t, ref, catalog)
	for _, q := range surv {
		if err := ref.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	if err := ref.SetBlockSize(-1); err != nil {
		t.Fatal(err)
	}
	pushWindows(t, ref, events, 100)
	if ref.TotalResults() == 0 {
		t.Fatal("no results; churn equivalence is vacuous")
	}

	run := func(t *testing.T, sys churnSys, cp colPusher, drain func()) {
		declareAll(t, sys, catalog)
		for _, q := range surv {
			if err := sys.AddQuery(q.Name, q.Root); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
			t.Fatal(err)
		}
		if err := cp.SetBlockSize(256); err != nil {
			t.Fatal(err)
		}
		// One transient joins or leaves at every window boundary: blocks
		// queued before and after each ApplyDelta barrier.
		churnOps, next := 0, 0
		var active []string
		const window = 100
		for off := 0; off < len(events); off += window {
			end := min(off+window, len(events))
			pushWindow(t, cp, events[off:end])
			q := trans[(off/window)%len(trans)]
			name := fmt.Sprintf("bt_%d", off/window)
			if err := sys.AddQueryLive(name, q.Root); err != nil {
				t.Fatal(err)
			}
			active = append(active, name)
			churnOps++
			if len(active)-next > 2 {
				if err := sys.RemoveQuery(active[next]); err != nil {
					t.Fatal(err)
				}
				next++
				churnOps++
			}
		}
		for ; next < len(active); next++ {
			if err := sys.RemoveQuery(active[next]); err != nil {
				t.Fatal(err)
			}
			churnOps++
		}
		drain()
		if churnOps < 40 {
			t.Fatalf("only %d churn ops, want ≥ 40", churnOps)
		}
		for _, q := range surv {
			if got, want := sys.ResultCount(q.Name), ref.ResultCount(q.Name); got != want {
				t.Fatalf("query %s: churned block run %d results, scalar reference %d", q.Name, got, want)
			}
		}
	}

	t.Run("system", func(t *testing.T) {
		s := rumor.New()
		run(t, s, s, func() {})
	})
	t.Run("sharded", func(t *testing.T) {
		s := rumor.NewSharded(rumor.ShardConfig{Shards: 2, BatchSize: 16})
		defer s.Close()
		run(t, s, s, func() {
			if err := s.Drain(); err != nil {
				t.Fatal(err)
			}
		})
	})
}

// TestCheckpointRestoreBlocksInFlight checkpoints mid-feed on the block
// path — on the sharded system without draining first, so column runs are
// still queued in worker batches — restores, and requires the continued
// runs to match the uninterrupted original exactly.
func TestCheckpointRestoreBlocksInFlight(t *testing.T) {
	catalog, qs, events := churnWorkload(t, "w2", 24, 4000, 5)
	half := len(events) / 2

	t.Run("system", func(t *testing.T) {
		sys := rumor.New()
		declareAll(t, sys, catalog)
		for _, q := range qs {
			if err := sys.AddQuery(q.Name, q.Root); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
			t.Fatal(err)
		}
		if err := sys.SetBlockSize(64); err != nil {
			t.Fatal(err)
		}
		pushWindows(t, sys, events[:half], 100)
		var buf bytes.Buffer
		if err := sys.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		res, err := rumor.Restore(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if err := res.SetBlockSize(64); err != nil {
			t.Fatal(err)
		}
		pushWindows(t, sys, events[half:], 100)
		pushWindows(t, res, events[half:], 100)
		if sys.TotalResults() == 0 {
			t.Fatal("no results; restore equivalence is vacuous")
		}
		for _, q := range qs {
			if got, want := res.ResultCount(q.Name), sys.ResultCount(q.Name); got != want {
				t.Fatalf("query %s: restored %d results, original %d", q.Name, got, want)
			}
		}
	})

	t.Run("sharded", func(t *testing.T) {
		sys := rumor.NewSharded(rumor.ShardConfig{Shards: 2, BatchSize: 64})
		defer sys.Close()
		declareAll(t, sys, catalog)
		for _, q := range qs {
			if err := sys.AddQuery(q.Name, q.Root); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
			t.Fatal(err)
		}
		if err := sys.SetBlockSize(64); err != nil {
			t.Fatal(err)
		}
		// No Drain before Checkpoint: pending batches still hold column
		// runs when the checkpoint quiesces the workers.
		pushWindows(t, sys, events[:half], 100)
		var buf bytes.Buffer
		if err := sys.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		res, err := rumor.RestoreSharded(bytes.NewReader(buf.Bytes()), rumor.ShardConfig{BatchSize: 64})
		if err != nil {
			t.Fatal(err)
		}
		defer res.Close()
		if err := res.SetBlockSize(64); err != nil {
			t.Fatal(err)
		}
		pushWindows(t, sys, events[half:], 100)
		pushWindows(t, res, events[half:], 100)
		if err := sys.Drain(); err != nil {
			t.Fatal(err)
		}
		if err := res.Drain(); err != nil {
			t.Fatal(err)
		}
		if sys.TotalResults() == 0 {
			t.Fatal("no results; restore equivalence is vacuous")
		}
		for _, q := range qs {
			if got, want := res.ResultCount(q.Name), sys.ResultCount(q.Name); got != want {
				t.Fatalf("query %s: restored %d results, original %d", q.Name, got, want)
			}
		}
	})
}
