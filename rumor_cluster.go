package rumor

import (
	"fmt"
	"net"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/shard"
)

// Distributed deployment: a ShardedSystem can host its engine replicas in
// other processes. Each remote node runs ServeShard on a listener; the
// coordinator calls DialCluster instead of Optimize, handing it one dial
// target per shard. Everything above the replica boundary is unchanged —
// Push/PushBatch route and batch exactly as in-process sharding does,
// Drain is a cluster-wide barrier, live churn (AddQueryLive/RemoveQuery),
// Rebalance, RecoverShard, and Checkpoint/RestoreSharded all operate over
// the same RPCs the in-process path exercises through the wire codec.
//
// Failure contract (every sentinel matches with errors.Is, at any wrap
// depth):
//
//   - ErrShardUnreachable: a worker link is down and the client is
//     redialling with bounded exponential backoff. Transient —
//     Push/PushBatch fail fast instead of buffering unboundedly, and the
//     same call succeeds again once the link heals. Nothing was lost:
//     batches are WAL-logged before shipment and delivered at-least-once
//     (workers deduplicate by batch sequence).
//   - ErrShardDead: a worker was declared lost — the outage outlasted the
//     failure timeout, the process restarted (its boot ID changed, so its
//     replica state is gone), or its replica hit a fatal replay error.
//     Terminal for that shard: recover with RecoverShard, which replays
//     the dead shard's unacknowledged WAL suffix and migrates its state to
//     the survivors over the wire, or restore from a checkpoint.
//   - ErrPartialMigration: a mid-flight state migration failed and was
//     rolled back; the engine is still serving under its old routing.
//
// RecoverShard on a partitioned (not restarted) worker first tries to
// revive the link: if the worker answers with its replica intact, catch-up
// is deduplicated by its sequence cursor and the shard rejoins without
// state movement; revive and transport failures during recovery return
// ErrShardUnreachable without damaging the engine, so the call is safely
// retryable.

// ErrShardUnreachable reports a transient worker outage on a cluster
// deployment: the link is down, reconnection is in progress, and pushes
// fail fast until the link heals or the worker is declared lost
// (ErrShardDead). Matches with errors.Is.
var ErrShardUnreachable = shard.ErrShardUnreachable

// ServeShard runs one shard worker on the listener, blocking until a
// coordinator sends a shutdown or the listener is closed (in which case
// the Accept error is returned). The worker is passive: the coordinator's
// handshake ships the plan, assigns the shard index, and drives all
// execution. A broken connection sends the worker back to Accept with its
// replica state retained — the coordinator redials and resumes. One
// ServeShard call hosts exactly one replica; run one per process
// (cmd/rumornode) or several on distinct listeners in-process for tests.
func ServeShard(lis net.Listener) error {
	return cluster.Serve(lis, cluster.WorkerConfig{})
}

// ShardWorker is an addressable shard worker: like ServeShard, but the
// handle exposes the worker's own telemetry while it serves, so a node
// process (cmd/rumornode) can publish a metrics endpoint alongside the
// protocol listener.
type ShardWorker struct {
	w *cluster.Worker
}

// NewShardWorker creates a shard worker; call Serve to run it.
func NewShardWorker() *ShardWorker {
	return &ShardWorker{w: cluster.NewWorker(cluster.WorkerConfig{})}
}

// Serve runs the worker on the listener exactly as ServeShard does.
func (sw *ShardWorker) Serve(lis net.Listener) error { return sw.w.Serve(lis) }

// Metrics snapshots the worker-side counters that are safe to read while
// Serve runs: batches applied, entries replayed, dedup skips, reply-cache
// hits, and the boot identity. Engine detail is reported through the
// coordinator's ShardedSystem.Metrics instead (fetched at a quiesce
// barrier over the stats RPC).
func (sw *ShardWorker) Metrics() *Metrics {
	return metricsFromSnapshot(sw.w.Metrics())
}

// ClusterNode names one remote shard worker. Either Addr (dialed over
// TCP) or Dial (any net.Conn factory — in-process pipes in tests) must be
// set; Dial wins when both are.
type ClusterNode struct {
	Addr string
	Dial func() (net.Conn, error)
}

// ClusterConfig sizes a distributed ShardedSystem. The shard count is
// len(Nodes); node i hosts shard i.
type ClusterConfig struct {
	// Nodes lists the shard workers, one per shard.
	Nodes []ClusterNode

	// BatchSize and QueueDepth mirror ShardConfig (defaults 256 / 8).
	BatchSize  int
	QueueDepth int

	// CallTimeout bounds one RPC attempt (default 5s). RetryMin/RetryMax
	// bound the reconnect backoff (defaults 50ms / 2s). FailTimeout is how
	// long an outage may last before the worker is declared lost and
	// ErrShardDead takes over from ErrShardUnreachable (default 15s).
	// HeartbeatInterval paces idle-link liveness probes (default 1s;
	// negative disables them).
	CallTimeout       time.Duration
	RetryMin          time.Duration
	RetryMax          time.Duration
	FailTimeout       time.Duration
	HeartbeatInterval time.Duration

	// MaxFrame bounds protocol frames (default 64 MiB).
	MaxFrame int
	// Seed makes backoff jitter deterministic (default 1); link i jitters
	// with Seed+i.
	Seed int64
}

// DialCluster plans the registered queries exactly as Optimize does, then
// deploys the replicas onto remote shard workers instead of in-process
// goroutines: it connects to every node, ships the serialized plan in the
// handshake, and starts ingestion. It must be called exactly once, in
// place of Optimize.
//
// Result callbacks are not supported on a cluster deployment — results
// are counted per shard and merged (ResultCount/TotalResults), not
// streamed back tuple-by-tuple — so DialCluster fails if OnResult was
// registered, and a callback registered afterwards is never invoked for
// remote replicas.
func (s *ShardedSystem) DialCluster(opt Options, cfg ClusterConfig) error {
	if s.sh != nil {
		return fmt.Errorf("rumor: system already optimized")
	}
	if len(cfg.Nodes) == 0 {
		return fmt.Errorf("rumor: DialCluster needs at least one node")
	}
	if s.onResult != nil {
		return fmt.Errorf("rumor: OnResult callbacks are not supported on a cluster deployment; results are merged counters, use ResultCount")
	}
	plan, err := s.sys.buildPlan(opt)
	if err != nil {
		return err
	}
	part := core.AnalyzePartition(plan)
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	epoch := time.Now().UnixNano()
	nodes := make([]cluster.Config, len(cfg.Nodes))
	for i, n := range cfg.Nodes {
		dial := n.Dial
		if dial == nil {
			if n.Addr == "" {
				return fmt.Errorf("rumor: cluster node %d has neither Addr nor Dial", i)
			}
			addr := n.Addr
			timeout := cfg.CallTimeout
			if timeout == 0 {
				timeout = 5 * time.Second
			}
			dial = func() (net.Conn, error) { return net.DialTimeout("tcp", addr, timeout) }
		}
		nodes[i] = cluster.Config{
			Dial:              dial,
			Epoch:             epoch,
			CallTimeout:       cfg.CallTimeout,
			RetryMin:          cfg.RetryMin,
			RetryMax:          cfg.RetryMax,
			FailTimeout:       cfg.FailTimeout,
			HeartbeatInterval: cfg.HeartbeatInterval,
			MaxFrame:          cfg.MaxFrame,
			Seed:              seed + int64(i),
		}
	}
	sh, err := shard.NewCluster(plan, part, shard.Config{
		Shards:     len(cfg.Nodes),
		BatchSize:  cfg.BatchSize,
		QueueDepth: cfg.QueueDepth,
	}, nodes)
	if err != nil {
		return err
	}
	s.sys.plan = plan
	s.sh = sh
	s.part = part
	s.cfg = ShardConfig{Shards: len(cfg.Nodes), BatchSize: cfg.BatchSize, QueueDepth: cfg.QueueDepth}
	return nil
}
