// Quickstart: declare a stream, register two continuous queries in the
// query language, optimize, push tuples, and read results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	rumor "repro"
)

func main() {
	sys := rumor.New()

	// A stock tick stream and two continuous queries: the per-symbol
	// 10-second moving average, and an alert on large trades of symbol 3.
	err := sys.ExecScript(`
CREATE STREAM Ticks(symbol, price, size);

LET avgprice := AGG(avg(price) OVER 10 BY symbol FROM Ticks);

QUERY movingAvg  := @avgprice;
QUERY bigTrades  := FILTER(symbol = 3 AND size > 500, Ticks);
QUERY cheapAvg   := FILTER(price < 100, @avgprice);
`)
	if err != nil {
		log.Fatal(err)
	}

	sys.OnResult(func(query string, ts int64, vals []int64) {
		fmt.Printf("  result %-10s @%-3d %v\n", query, ts, vals)
	})

	// The m-rules share the aggregate between movingAvg and cheapAvg and
	// index the selection predicates.
	if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
		log.Fatal(err)
	}
	info := sys.PlanInfo()
	fmt.Printf("optimized plan: %d queries → %d m-ops implementing %d operators\n",
		info.Queries, info.MOps, info.Operators)

	ticks := []struct {
		ts                  int64
		symbol, price, size int64
	}{
		{0, 3, 101, 200},
		{1, 3, 99, 700}, // big trade
		{2, 5, 42, 100},
		{3, 3, 97, 100},
		{4, 5, 44, 900},
	}
	for _, tk := range ticks {
		fmt.Printf("push @%d symbol=%d price=%d size=%d\n", tk.ts, tk.symbol, tk.price, tk.size)
		if err := sys.Push("Ticks", tk.ts, tk.symbol, tk.price, tk.size); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("totals: movingAvg=%d bigTrades=%d cheapAvg=%d\n",
		sys.ResultCount("movingAvg"), sys.ResultCount("bigTrades"), sys.ResultCount("cheapAvg"))
}
