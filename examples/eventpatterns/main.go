// Eventpatterns: a large event-pattern workload (the paper's Workload 1,
// §5.2) processed two ways — by the Cayuga-style automaton engine with its
// FR/AN indexes, and by the same automata translated to RUMOR query plans
// (§4.2) and optimized with m-rules. Both produce identical results; the
// demo prints the plan collapse and both throughputs.
//
//	go run ./examples/eventpatterns
package main

import (
	"fmt"
	"log"
	"time"

	rumor "repro"
	"repro/internal/automaton"
	"repro/internal/workload"
)

func main() {
	p := workload.DefaultParams()
	p.NumQueries = 2000
	events := p.GenStreams(30000)
	autQueries := p.Workload1()
	fmt.Printf("workload 1: %d pattern queries of template σθ1(S) ;θ2∧θ3 T, %d events\n",
		p.NumQueries, len(events))

	// Cayuga automaton engine.
	aut := automaton.NewEngine(p.Schemas())
	for _, q := range autQueries {
		if _, err := aut.AddQuery(q); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	for _, ev := range events {
		aut.Process(ev.Source, ev.Tuple)
	}
	autElapsed := time.Since(start)
	fmt.Printf("cayuga automata: %7.0f events/s, %d matches (forest: %+v)\n",
		float64(len(events))/autElapsed.Seconds(), aut.TotalResults(), aut.Stats())

	// The same automata as RUMOR query plans.
	sys := rumor.New()
	if err := sys.DeclareStream("S", "", attrs(p.NumAttrs)...); err != nil {
		log.Fatal(err)
	}
	if err := sys.DeclareStream("T", "", attrs(p.NumAttrs)...); err != nil {
		log.Fatal(err)
	}
	for _, q := range autQueries {
		l, err := q.ToLogical()
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.AddQuery(q.Name, l); err != nil {
			log.Fatal(err)
		}
	}
	// Channels are disabled here: Workload 1's σ outputs rarely carry
	// tuples belonging to multiple streams, so channel encoding costs more
	// than it shares — exactly the §3.2 tradeoff. (The paper, too, uses
	// channels only for Workload 3.)
	if err := sys.Optimize(rumor.Options{Channels: false}); err != nil {
		log.Fatal(err)
	}
	info := sys.PlanInfo()
	fmt.Printf("rumor plan: %d operators collapsed into %d m-ops (predicate index + AN/AI merge)\n",
		info.Operators, info.MOps)

	start = time.Now()
	for _, ev := range events {
		if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			log.Fatal(err)
		}
	}
	rumorElapsed := time.Since(start)
	fmt.Printf("rumor plans:     %7.0f events/s, %d matches\n",
		float64(len(events))/rumorElapsed.Seconds(), sys.TotalResults())

	if sys.TotalResults() != aut.TotalResults() {
		log.Fatalf("MISMATCH: automaton %d vs RUMOR %d", aut.TotalResults(), sys.TotalResults())
	}
	fmt.Println("result parity: OK")
}

func attrs(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("a%d", i)
	}
	return out
}
