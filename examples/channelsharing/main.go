// Channelsharing: the paper's Workload 3 (§5.2) — identical sequence
// queries over k sharable streams S1…Sk. With channels enabled, the
// optimizer encodes the Si into one channel and merges the ; operators
// into a single m-op that stores one instance per content tuple; without
// channels, every stream is processed separately. The demo feeds identical
// content both ways and prints the throughput gap (the paper reports
// roughly an order of magnitude, Figure 10(c)).
//
//	go run ./examples/channelsharing
package main

import (
	"fmt"
	"log"
	"time"

	rumor "repro"
	"repro/internal/expr"
	"repro/internal/workload"
)

const (
	capacity = 10
	nQueries = 200
	rounds   = 5000
)

func build(channels bool) *rumor.System {
	sys := rumor.New()
	names := make([]string, capacity)
	for i := range names {
		names[i] = fmt.Sprintf("S%d", i+1)
		if err := sys.DeclareStream(names[i], "grp", "a0", "a1"); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.DeclareStream("T", "", "a0", "a1"); err != nil {
		log.Fatal(err)
	}
	pred := expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}
	for i := 0; i < nQueries; i++ {
		left := rumor.Scan(names[i%capacity])
		root := rumor.Seq(pred, 1000, left, rumor.Scan("T"))
		if err := sys.AddQuery(fmt.Sprintf("q%d", i), root); err != nil {
			log.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{Channels: channels}); err != nil {
		log.Fatal(err)
	}
	return sys
}

func main() {
	p := workload.DefaultParams()
	p.NumAttrs = 2
	events := p.Workload3Rounds(capacity, rounds)
	names := make([]string, capacity)
	for i := range names {
		names[i] = fmt.Sprintf("S%d", i+1)
	}

	var tps [2]float64
	for mode, channels := range []bool{false, true} {
		sys := build(channels)
		info := sys.PlanInfo()
		start := time.Now()
		logical := 0
		for r := 0; r < rounds; r++ {
			base := r * (capacity + 1)
			if channels {
				// One channel tuple carries the shared content for all Si.
				ev := events[base]
				if err := sys.PushShared(names, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
					log.Fatal(err)
				}
			} else {
				for i := 0; i < capacity; i++ {
					ev := events[base+i]
					if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
						log.Fatal(err)
					}
				}
			}
			tev := events[base+capacity]
			if err := sys.Push("T", tev.Tuple.TS, tev.Tuple.Vals...); err != nil {
				log.Fatal(err)
			}
			logical += capacity + 1
		}
		elapsed := time.Since(start)
		tps[mode] = float64(logical) / elapsed.Seconds()
		label := "without channel"
		if channels {
			label = "with channel   "
		}
		fmt.Printf("%s: %2d m-ops, %d channels — %9.0f events/s (%d results)\n",
			label, info.MOps, info.Channels, tps[mode], sys.TotalResults())
	}
	fmt.Printf("speedup from channel sharing: %.1fx\n", tps[1]/tps[0])
}
