// Perfmon: the paper's motivating scenario (§4.1) — hybrid queries that
// smooth per-process CPU load with a sliding-window aggregate (relational
// engine functionality) and detect monotonically rising load with the µ
// pattern operator (event engine functionality). Runs n instances of
// Query 2 over a synthetic performance-counter trace and compares the
// channel-optimized plan with the plain plan.
//
//	go run ./examples/perfmon
package main

import (
	"fmt"
	"log"
	"time"

	rumor "repro"
	"repro/internal/workload"
)

func main() {
	const nQueries = 10
	const traceSeconds = 180
	trace := workload.D2(traceSeconds).Events()
	fmt.Printf("trace: %d processes, %d seconds, %d samples\n", 28, traceSeconds, len(trace))

	for _, channels := range []bool{false, true} {
		sys := rumor.New()
		if err := sys.DeclareStream("CPU", "", "pid", "load"); err != nil {
			log.Fatal(err)
		}
		// n instances of Query 2: identical smoothing and pattern, only
		// the starting condition differs per query.
		for i, q := range workload.DefaultHybrid(nQueries, 0.5).Queries() {
			if err := sys.AddQuery(fmt.Sprintf("ramp%d", i), q.Root); err != nil {
				log.Fatal(err)
			}
		}
		if err := sys.Optimize(rumor.Options{Channels: channels}); err != nil {
			log.Fatal(err)
		}
		info := sys.PlanInfo()

		start := time.Now()
		for _, ev := range trace {
			if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := time.Since(start)

		mode := "without channels"
		if channels {
			mode = "with channels   "
		}
		fmt.Printf("%s: %2d m-ops (%3d operators, %d channels) — %7.0f events/s, %d ramp alerts\n",
			mode, info.MOps, info.Operators, info.Channels,
			float64(len(trace))/elapsed.Seconds(), sys.TotalResults())
	}
}
