// Command rumornode hosts one RUMOR shard worker.
//
// The worker is passive: it listens for the coordinator, receives the
// optimized plan in the handshake, and executes the shard the coordinator
// assigns it. Run one rumornode per shard and point the coordinator's
// DialCluster at the addresses:
//
//	rumornode -listen :7071 &
//	rumornode -listen :7072 &
//
// The process exits 0 when the coordinator shuts the cluster down
// (ShardedSystem.Close), and keeps its replica across coordinator
// reconnects — a dropped connection alone loses nothing. Restarting
// rumornode does lose the replica; the coordinator detects that by the
// boot-ID change and declares the shard lost (recover with RecoverShard).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	rumor "repro"
	"repro/obshttp"
)

func main() {
	listen := flag.String("listen", ":7071", "TCP address to accept the coordinator on")
	metrics := flag.String("metrics", "", "HTTP address for /metrics, /trace, /debug/pprof (empty = disabled)")
	quiet := flag.Bool("q", false, "suppress startup log line")
	flag.Parse()

	lis, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rumornode: %v\n", err)
		os.Exit(1)
	}
	worker := rumor.NewShardWorker()
	if *metrics != "" {
		rumor.EnableMetrics(true)
		srv, err := obshttp.Start(*metrics, func() (*rumor.Metrics, error) {
			return worker.Metrics(), nil
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rumornode: metrics listener: %v\n", err)
			os.Exit(1)
		}
		defer srv.Close()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "rumornode: metrics on http://%s/metrics\n", srv.Addr())
		}
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "rumornode: serving one shard on %s\n", lis.Addr())
	}
	if err := worker.Serve(lis); err != nil {
		fmt.Fprintf(os.Stderr, "rumornode: %v\n", err)
		os.Exit(1)
	}
}
