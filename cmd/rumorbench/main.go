// Command rumorbench regenerates the evaluation figures of "Rule-Based
// Multi-Query Optimization" (EDBT 2009): Figures 9(a–d), 10(a–d) and
// 11(a,b). Each figure prints as a text table with one row per x position
// and the two series the paper plots.
//
// Usage:
//
//	rumorbench -fig all                 # every figure, default scale
//	rumorbench -fig 9a -maxq 100000     # paper-scale query sweep
//	rumorbench -fig 10c -rounds 5000
//	rumorbench -fig scale -shards 4     # sharded-runtime scaling, 1..4 shards
//	rumorbench -fig churn -shards 2     # live add/remove churn latency +
//	                                    # channel width (live/total slots)
//	rumorbench -fig rebalance -shards 4 # online rebalancing on skewed W1
//	rumorbench -fig recover -shards 4   # checkpoint size, restore latency,
//	                                    # recovery pause vs window size
//	rumorbench -fig cluster -shards 4   # local vs networked (pipe) shard
//	                                    # deployment: wire-protocol overhead
//	rumorbench -fig obs                 # telemetry overhead: metrics
//	                                    # disabled vs enabled, ns + allocs
//	rumorbench -fig batch               # vectorized execution: scalar vs
//	                                    # block path at sizes 1/16/64/256
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 9a..9d, 10a..10d, 11a, 11b, scale, churn, rebalance, recover, cluster, obs, batch, or all")
	tuples := flag.Int("tuples", 20000, "input events per S/T measurement")
	rounds := flag.Int("rounds", 2000, "workload-3 rounds per measurement")
	trace := flag.Int("trace", 240, "perfmon trace length in seconds (figure 11)")
	maxq := flag.Int("maxq", 10000, "cap for query-count sweeps")
	passes := flag.Int("passes", 3, "interleaved A/B passes per figure point (best kept)")
	seed := flag.Int64("seed", 1, "workload seed")
	shards := flag.Int("shards", 4, "max shard count for -fig scale (doubling from 1)")
	flag.Parse()

	cfg := bench.Config{
		Tuples:       *tuples,
		Rounds:       *rounds,
		TraceSeconds: *trace,
		MaxQueries:   *maxq,
		Passes:       *passes,
		Seed:         *seed,
	}

	if *fig == "batch" {
		rows, err := cfg.Batch()
		bench.FprintBatch(os.Stdout, rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rumorbench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "obs" {
		rows, err := cfg.Obs()
		bench.FprintObs(os.Stdout, rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rumorbench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "churn" {
		rows, err := cfg.Churn(*shards)
		bench.FprintChurn(os.Stdout, rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rumorbench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "rebalance" {
		var counts []int
		for n := 2; n <= *shards; n *= 2 {
			counts = append(counts, n)
		}
		rows, err := cfg.Rebalance(counts)
		bench.FprintRebalance(os.Stdout, rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rumorbench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "recover" {
		var counts []int
		for n := 2; n <= *shards; n *= 2 {
			counts = append(counts, n)
		}
		rows, err := cfg.Recover(counts)
		bench.FprintRecover(os.Stdout, rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rumorbench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "cluster" {
		var counts []int
		for n := 2; n <= *shards; n *= 2 {
			counts = append(counts, n)
		}
		rows, err := cfg.Cluster(counts)
		bench.FprintCluster(os.Stdout, rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rumorbench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "scale" {
		var counts []int
		for n := 1; n <= *shards; n *= 2 {
			counts = append(counts, n)
		}
		rows, err := cfg.Scaling(counts)
		bench.FprintScaling(os.Stdout, rows)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rumorbench:", err)
			os.Exit(1)
		}
		return
	}
	if *fig == "all" {
		results, err := cfg.All()
		for _, r := range results {
			r.Fprint(os.Stdout)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rumorbench:", err)
			os.Exit(1)
		}
		return
	}
	run, ok := cfg.ByName(*fig)
	if !ok {
		fmt.Fprintf(os.Stderr, "rumorbench: unknown figure %q\n", *fig)
		os.Exit(2)
	}
	r, err := run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rumorbench:", err)
		os.Exit(1)
	}
	r.Fprint(os.Stdout)
}
