// Command perfmongen emits the synthetic performance-counter trace that
// substitutes the paper's Windows Performance Monitor datasets D1/D2
// (§5.3): one CPU(pid, load) sample per process per second, with ramp
// episodes, as CSV lines "ts,pid,load".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	procs := flag.Int("procs", 104, "number of monitored processes (D1: 104, D2: 28)")
	seconds := flag.Int("seconds", 3600, "trace length in seconds (paper: 86400 = 24h)")
	seed := flag.Int64("seed", 41, "generator seed")
	out := flag.String("o", "-", "output file ('-' = stdout)")
	flag.Parse()

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfmongen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()

	tr := workload.PerfTrace{NumProcs: *procs, Seconds: *seconds, Seed: *seed}
	fmt.Fprintln(bw, "ts,pid,load")
	for _, ev := range tr.Events() {
		fmt.Fprintf(bw, "%d,%d,%d\n", ev.Tuple.TS, ev.Tuple.Vals[0], ev.Tuple.Vals[1])
	}
}
