// Command rumorvet runs the repro/internal/analysis suite: static checks
// for the runtime's pooled-ownership, allocation-free, atomic-field,
// lock-discipline, wire-tag, and dropped-error invariants.
//
// Two modes:
//
//	go vet -vettool=$(pwd)/bin/rumorvet ./...   # unitchecker protocol
//	rumorvet [-json] [-<analyzer>] [patterns]   # standalone, defaults ./...
//
// In both modes the exit status is 0 when clean, 1 on an internal error,
// and 2 when findings were reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rumorvet", flag.ContinueOnError)
	fs.SetOutput(stderr)

	versionFlag := fs.String("V", "", "print version and exit (the go command probes with -V=full)")
	flagsFlag := fs.Bool("flags", false, "print the tool's flags as JSON and exit (go vet probes this)")
	jsonFlag := fs.Bool("json", false, "emit findings as JSON on stdout instead of text on stderr")

	all := analysis.Analyzers()
	enabled := make(map[string]*bool, len(all))
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, false, "run only the "+a.Name+" analyzer: "+a.Doc)
	}

	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *versionFlag != "":
		return printVersion(stdout, stderr)
	case *flagsFlag:
		return printFlags(fs, stdout, stderr)
	}

	// If any per-analyzer flag is set, restrict the suite to those.
	selected := all
	if anySelected(enabled) {
		selected = selected[:0:0]
		for _, a := range all {
			if *enabled[a.Name] {
				selected = append(selected, a)
			}
		}
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		// go vet unitchecker invocation: rumorvet <flags> <objdir>/vet.cfg.
		return analysis.RunUnit(rest[0], selected, stderr)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(".", selected, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "rumorvet: %v\n", err)
		return 1
	}
	if *jsonFlag {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(stderr, "rumorvet: %v\n", err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stderr, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func anySelected(enabled map[string]*bool) bool {
	for _, v := range enabled {
		if *v {
			return true
		}
	}
	return false
}

// printVersion implements -V=full: the go command caches vet results keyed
// on this line, so it must change whenever the tool's behavior does — a
// content hash of the executable delivers exactly that.
func printVersion(stdout, stderr io.Writer) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(stderr, "rumorvet: %v\n", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintf(stderr, "rumorvet: %v\n", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintf(stderr, "rumorvet: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "rumorvet version sha256:%x\n", h.Sum(nil)[:12])
	return 0
}

// printFlags implements -flags: go vet asks the tool which flags it accepts
// before forwarding any, expecting a JSON array of {Name, Bool, Usage}.
func printFlags(fs *flag.FlagSet, stdout, stderr io.Writer) int {
	type jsonFlagDesc struct {
		Name  string
		Bool  bool
		Usage string
	}
	var descs []jsonFlagDesc
	fs.VisitAll(func(f *flag.Flag) {
		if f.Name == "flags" || f.Name == "V" {
			return
		}
		b, isBool := f.Value.(interface{ IsBoolFlag() bool })
		descs = append(descs, jsonFlagDesc{
			Name:  f.Name,
			Bool:  isBool && b.IsBoolFlag(),
			Usage: f.Usage,
		})
	})
	data, err := json.MarshalIndent(descs, "", "  ")
	if err != nil {
		fmt.Fprintf(stderr, "rumorvet: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, string(data))
	return 0
}
