// Command rumorcli runs a CQL script against tuple input.
//
// The script (see package cql for the grammar) declares streams and
// continuous queries. Input tuples are CSV lines of the form
//
//	stream,ts,v1,v2,...
//
// read from the file given with -events, or from stdin with "-events -".
// With "-gen n" the tool instead generates n random tuples per declared
// stream (uniform values in [0, -domain)), interleaved by timestamp.
//
// Example:
//
//	rumorcli -script monitoring.cql -gen 10000 -channels
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	rumor "repro"
	"repro/obshttp"
)

// pushFunc injects one tuple; the metrics path wraps it in a mutex so a
// concurrent scrape never races the single-threaded System.
type pushFunc func(stream string, ts int64, vals ...int64) error

func main() {
	script := flag.String("script", "", "CQL script file (required)")
	events := flag.String("events", "", "CSV tuple file ('-' = stdin)")
	gen := flag.Int("gen", 0, "generate this many random tuples per stream instead of reading input")
	domain := flag.Int("domain", 1000, "domain for generated attribute values")
	seed := flag.Int64("seed", 1, "seed for generated input")
	channels := flag.Bool("channels", true, "enable channel-based m-rules")
	verbose := flag.Bool("v", false, "print every result tuple")
	dot := flag.Bool("dot", false, "print the optimized plan in Graphviz dot format and exit")
	metrics := flag.String("metrics", "", "HTTP address for /metrics, /trace, /debug/pprof (empty = disabled)")
	flag.Parse()

	if *script == "" {
		fmt.Fprintln(os.Stderr, "rumorcli: -script is required")
		os.Exit(2)
	}
	src, err := os.ReadFile(*script)
	if err != nil {
		fail(err)
	}
	sys := rumor.New()
	if err := sys.ExecScript(string(src)); err != nil {
		fail(err)
	}
	if *verbose {
		sys.OnResult(func(q string, ts int64, vals []int64) {
			fmt.Printf("%s @%d %v\n", q, ts, vals)
		})
	}
	if err := sys.Optimize(rumor.Options{Channels: *channels}); err != nil {
		fail(err)
	}
	if *dot {
		fmt.Print(sys.PlanDot())
		return
	}
	info := sys.PlanInfo()
	fmt.Printf("plan: %d queries, %d m-ops implementing %d operators, %d channels\n",
		info.Queries, info.MOps, info.Operators, info.Channels)

	push := pushFunc(sys.Push)
	if *metrics != "" {
		rumor.EnableMetrics(true)
		// System is single-threaded; serialize the scrape against pushes.
		// Unmetered runs keep the direct push path and pay nothing.
		var mu sync.Mutex
		push = func(stream string, ts int64, vals ...int64) error {
			mu.Lock()
			defer mu.Unlock()
			return sys.Push(stream, ts, vals...)
		}
		srv, err := obshttp.Start(*metrics, func() (*rumor.Metrics, error) {
			mu.Lock()
			defer mu.Unlock()
			return sys.Metrics(), nil
		})
		if err != nil {
			fail(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "rumorcli: metrics on http://%s/metrics\n", srv.Addr())
	}

	start := time.Now()
	n := 0
	switch {
	case *gen > 0:
		n = generate(push, string(src), *gen, *domain, *seed)
	case *events != "":
		n = feedCSV(push, *events)
	default:
		fmt.Fprintln(os.Stderr, "rumorcli: provide -events or -gen")
		os.Exit(2)
	}
	elapsed := time.Since(start)

	fmt.Printf("processed %d events in %v (%.0f events/s), %d results\n",
		n, elapsed.Round(time.Millisecond),
		float64(n)/elapsed.Seconds(), sys.TotalResults())
}

// generate feeds random interleaved tuples to every stream declared in the
// script (re-parsed here only for its stream list — the System does not
// expose the catalog).
func generate(push pushFunc, src string, perStream, domain int, seed int64) int {
	streams := declaredStreams(src)
	sort.Slice(streams, func(i, j int) bool { return streams[i].name < streams[j].name })
	r := rand.New(rand.NewSource(seed))
	n := 0
	ts := int64(0)
	for i := 0; i < perStream; i++ {
		for _, s := range streams {
			vals := make([]int64, s.arity)
			for j := range vals {
				vals[j] = int64(r.Intn(domain))
			}
			if err := push(s.name, ts, vals...); err != nil {
				fail(err)
			}
			ts++
			n++
		}
	}
	return n
}

type streamDecl struct {
	name  string
	arity int
}

// declaredStreams extracts CREATE STREAM names and arities with a light
// scan (the real parser already validated the script).
func declaredStreams(src string) []streamDecl {
	var out []streamDecl
	upper := strings.ToUpper(src)
	i := 0
	for {
		k := strings.Index(upper[i:], "CREATE")
		if k < 0 {
			break
		}
		i += k
		rest := src[i:]
		open := strings.Index(rest, "(")
		closeP := strings.Index(rest, ")")
		if open < 0 || closeP < open {
			break
		}
		fields := strings.Fields(rest[:open])
		if len(fields) >= 3 {
			name := strings.TrimSpace(fields[2])
			arity := len(strings.Split(rest[open+1:closeP], ","))
			out = append(out, streamDecl{name: name, arity: arity})
		}
		i += closeP
	}
	return out
}

// feedCSV pushes stream,ts,v1,v2,... lines.
func feedCSV(push pushFunc, path string) int {
	var in *os.File
	if path == "-" {
		in = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		in = f
	}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) < 2 {
			fail(fmt.Errorf("line %d: need stream,ts,...", line))
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			fail(fmt.Errorf("line %d: bad timestamp: %v", line, err))
		}
		vals := make([]int64, len(parts)-2)
		for i, p := range parts[2:] {
			v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
			if err != nil {
				fail(fmt.Errorf("line %d: bad value: %v", line, err))
			}
			vals[i] = v
		}
		if err := push(strings.TrimSpace(parts[0]), ts, vals...); err != nil {
			fail(fmt.Errorf("line %d: %v", line, err))
		}
		n++
	}
	if err := sc.Err(); err != nil {
		fail(err)
	}
	return n
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "rumorcli:", err)
	os.Exit(1)
}
