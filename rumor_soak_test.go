package rumor_test

import (
	"fmt"
	"testing"

	rumor "repro"
)

// The churn soak test hammers the live query lifecycle: ≥1000 interleaved
// AddQueryLive/RemoveQuery operations against a running engine (transient
// definitions cycled from a fixed pool, so the same query is re-added many
// times), with events flowing between operations. It asserts the two
// churn-durability guarantees of this PR on top of the usual survivor
// equivalence:
//
//   - bounded membership width: after every maintenance operation the
//     plan-wide channel slot ratio live/total stays ≥ 1/2 (compaction +
//     slot reuse), so a long-lived engine does not accrete tombstones;
//   - no drift: the surviving queries' final counts equal a from-scratch
//     run that planned only them.

// soakSys extends the churn surface with plan introspection.
type soakSys interface {
	churnSys
	PlanInfo() rumor.PlanInfo
}

func runSoak(t *testing.T, sys soakSys, drain func(), wl string, minOps int) {
	t.Helper()
	catalog, surv, events := churnWorkload(t, wl, 24, 6000, 5)
	_, pool, _ := churnWorkload(t, wl, 48, 0, 101)

	declareAll(t, sys, catalog)
	half := len(surv) / 2
	for _, q := range surv[:half] {
		if err := sys.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	ops := 0
	minRatio := 1.0
	checkWidth := func() {
		pi := sys.PlanInfo()
		if pi.TotalSlots == 0 {
			return
		}
		r := float64(pi.LiveSlots) / float64(pi.TotalSlots)
		if r < minRatio {
			minRatio = r
		}
		if 2*pi.LiveSlots < pi.TotalSlots {
			t.Fatalf("after %d ops: channel width unbounded: %d/%d live slots (ratio %.2f)",
				ops, pi.LiveSlots, pi.TotalSlots, r)
		}
	}
	for _, q := range surv[half:] {
		if err := sys.AddQueryLive(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
		ops++
		checkWidth()
	}

	// Transient churn: cycle the pool so identical definitions are added,
	// removed, and re-added over and over (slot reuse + compaction under
	// sustained pressure). Keep a few transients alive at all times.
	rounds := (minOps - ops) / 2
	var active []string
	next, gen := 0, 0
	for i := 0; i < rounds; i++ {
		lo, hi := i*len(events)/rounds, (i+1)*len(events)/rounds
		for _, ev := range events[lo:hi] {
			if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
				t.Fatal(err)
			}
		}
		q := pool[gen%len(pool)]
		name := fmt.Sprintf("tr_%d", gen)
		gen++
		if err := sys.AddQueryLive(name, q.Root); err != nil {
			t.Fatal(err)
		}
		active = append(active, name)
		ops++
		checkWidth()
		if len(active[next:]) > 3 {
			if err := sys.RemoveQuery(active[next]); err != nil {
				t.Fatal(err)
			}
			next++
			ops++
			checkWidth()
		}
	}
	for ; next < len(active); next++ {
		if err := sys.RemoveQuery(active[next]); err != nil {
			t.Fatal(err)
		}
		ops++
		checkWidth()
	}
	drain()
	if ops < minOps {
		t.Fatalf("only %d churn operations, want ≥ %d", ops, minOps)
	}
	t.Logf("%d churn ops, min live/total slot ratio %.2f, final plan %+v", ops, minRatio, sys.PlanInfo())

	// Survivor equivalence against a from-scratch plan.
	ref := rumor.New()
	declareAll(t, ref, catalog)
	for _, q := range surv {
		if err := ref.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := ref.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, q := range surv {
		got, want := sys.ResultCount(q.Name), ref.ResultCount(q.Name)
		if got != want {
			t.Fatalf("query %s: soak run = %d results, from-scratch = %d", q.Name, got, want)
		}
		total += got
	}
	if total == 0 {
		t.Fatal("survivors produced no results; the soak equivalence is vacuous")
	}
}

// soakOps returns the per-configuration operation floor: the full ≥1000-op
// soak in regular runs (the CI race job), a light version under -short.
func soakOps(t *testing.T) int {
	if testing.Short() {
		return 120
	}
	return 1000
}

func TestChurnSoakSystem(t *testing.T) {
	for _, wl := range []string{"w1", "w2", "w3"} {
		t.Run(wl, func(t *testing.T) {
			runSoak(t, rumor.New(), func() {}, wl, soakOps(t))
		})
	}
}

func TestChurnSoakSharded(t *testing.T) {
	for _, wl := range []string{"w1", "w2", "w3"} {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", wl, shards), func(t *testing.T) {
				sys := rumor.NewSharded(rumor.ShardConfig{Shards: shards, BatchSize: 64})
				defer sys.Close()
				runSoak(t, sys, func() {
					if err := sys.Drain(); err != nil {
						t.Fatal(err)
					}
				}, wl, soakOps(t))
			})
		}
	}
}
