package rumor_test

import (
	"strings"
	"sync"
	"testing"

	rumor "repro"
	"repro/internal/expr"
)

// perfScript is a CQL workload whose smoothing aggregate is keyed by pid:
// the partition analysis should hash CPU tuples on pid.
const perfScript = `
CREATE STREAM CPU(pid, load);
LET smoothed := AGG(avg(load) OVER 60 BY pid FROM CPU);
QUERY hot := FILTER(load > 90, @smoothed);
QUERY warm := FILTER(load > 50, @smoothed);
`

func buildShardedPerf(t *testing.T, shards int) *rumor.ShardedSystem {
	t.Helper()
	sys := rumor.NewSharded(rumor.ShardConfig{Shards: shards, BatchSize: 8})
	if err := sys.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestShardedSystemLifecycle(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		ref := rumor.New()
		if err := ref.ExecScript(perfScript); err != nil {
			t.Fatal(err)
		}
		if err := ref.Optimize(rumor.Options{Channels: true}); err != nil {
			t.Fatal(err)
		}
		sys := buildShardedPerf(t, shards)
		if got := sys.NumShards(); got != shards {
			t.Fatalf("NumShards = %d, want %d", got, shards)
		}
		if info := sys.PartitionInfo(); !strings.Contains(info, "CPU: hash(a0)") {
			t.Fatalf("partition info = %q, want CPU hashed on pid", info)
		}
		for ts := int64(0); ts < 200; ts++ {
			pid := ts % 16
			load := (ts * 7) % 101
			if err := ref.Push("CPU", ts, pid, load); err != nil {
				t.Fatal(err)
			}
			if err := sys.Push("CPU", ts, pid, load); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Drain(); err != nil {
			t.Fatal(err)
		}
		for _, q := range []string{"hot", "warm"} {
			if got, want := sys.ResultCount(q), ref.ResultCount(q); got != want {
				t.Fatalf("shards=%d query %s: %d results, want %d", shards, q, got, want)
			}
		}
		if got, want := sys.TotalResults(), ref.TotalResults(); got != want || got == 0 {
			t.Fatalf("shards=%d total = %d, want %d (nonzero)", shards, got, want)
		}
		var tuples int64
		for _, st := range sys.ShardStats() {
			tuples += st.Tuples
		}
		if tuples != 200 {
			t.Fatalf("shard stats count %d tuples, want 200", tuples)
		}
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
		if err := sys.Push("CPU", 999, 1, 1); err == nil {
			t.Fatal("Push after Close should fail")
		}
	}
}

// The sequenced OnResult callback must see every merged result exactly
// once, with correct query attribution, and must be callback-race free.
func TestShardedSystemOnResult(t *testing.T) {
	ref := rumor.New()
	if err := ref.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	if err := ref.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	sys := rumor.NewSharded(rumor.ShardConfig{Shards: 4, BatchSize: 4})
	if err := sys.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	got := map[string]int{}
	sys.OnResult(func(q string, ts int64, vals []int64) {
		mu.Lock()
		got[q]++
		mu.Unlock()
	})
	if err := sys.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	for ts := int64(0); ts < 300; ts++ {
		pid := ts % 8
		load := (ts * 13) % 101
		if err := ref.Push("CPU", ts, pid, load); err != nil {
			t.Fatal(err)
		}
		if err := sys.Push("CPU", ts, pid, load); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"hot", "warm"} {
		if int64(got[q]) != ref.ResultCount(q) {
			t.Fatalf("query %s: %d callbacks, want %d", q, got[q], ref.ResultCount(q))
		}
	}
}

// Programmatic builders work through the sharded API, and an unkeyed
// event-pattern plan (Workload-1 shape) broadcasts the probe side while
// the result counts still match the single-threaded system.
func TestShardedSystemBuildersUnkeyed(t *testing.T) {
	mk := func(shards int) (*rumor.ShardedSystem, *rumor.System) {
		sh := rumor.NewSharded(rumor.ShardConfig{Shards: shards, BatchSize: 16})
		ref := rumor.New()
		for _, s := range []struct {
			decl func(name, label string, attrs ...string) error
			add  func(name string, root *rumor.Logical) error
		}{
			{sh.DeclareStream, sh.AddQuery},
			{ref.DeclareStream, ref.AddQuery},
		} {
			if err := s.decl("S", "", "a", "b"); err != nil {
				t.Fatal(err)
			}
			if err := s.decl("T", "", "a", "b"); err != nil {
				t.Fatal(err)
			}
			pred := expr.NewAnd2(expr.Right{P: expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 3}})
			root := rumor.Seq(pred, 50,
				rumor.Filter(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: 1}, rumor.Scan("S")),
				rumor.Scan("T"))
			if err := s.add("pattern", root); err != nil {
				t.Fatal(err)
			}
		}
		if err := sh.Optimize(rumor.Options{}); err != nil {
			t.Fatal(err)
		}
		if err := ref.Optimize(rumor.Options{}); err != nil {
			t.Fatal(err)
		}
		return sh, ref
	}
	for _, shards := range []int{2, 4} {
		sh, ref := mk(shards)
		if info := sh.PartitionInfo(); !strings.Contains(info, "T: multicast") {
			t.Fatalf("partition info = %q, want T multicast", info)
		}
		for ts := int64(0); ts < 400; ts++ {
			src := "S"
			vals := []int64{ts % 5, 0}
			if ts%2 == 1 {
				src = "T"
				vals = []int64{3, 0}
			}
			if err := ref.Push(src, ts, vals...); err != nil {
				t.Fatal(err)
			}
			if err := sh.Push(src, ts, vals...); err != nil {
				t.Fatal(err)
			}
		}
		if err := sh.Drain(); err != nil {
			t.Fatal(err)
		}
		if got, want := sh.ResultCount("pattern"), ref.ResultCount("pattern"); got != want || want == 0 {
			t.Fatalf("shards=%d pattern = %d, want %d (nonzero)", shards, got, want)
		}
		if err := sh.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
