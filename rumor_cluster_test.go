package rumor_test

import (
	"bytes"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	rumor "repro"
	"repro/internal/transport"
)

// startPipeWorkers serves n shard workers on in-memory pipe listeners and
// returns cluster nodes dialing them plus a done channel per worker.
func startPipeWorkers(t *testing.T, n int) ([]rumor.ClusterNode, []chan struct{}) {
	t.Helper()
	nodes := make([]rumor.ClusterNode, n)
	dones := make([]chan struct{}, n)
	for i := 0; i < n; i++ {
		lis := transport.NewPipeListener()
		done := make(chan struct{})
		go func() {
			defer close(done)
			rumor.ServeShard(lis)
		}()
		t.Cleanup(func() {
			lis.Close()
			<-done
		})
		nodes[i] = rumor.ClusterNode{Dial: lis.Dial}
		dones[i] = done
	}
	return nodes, dones
}

func pushPerf(t *testing.T, push func(string, int64, ...int64) error, lo, hi int64) {
	t.Helper()
	for ts := lo; ts < hi; ts++ {
		pid := ts % 16
		load := (ts * 7) % 101
		if err := push("CPU", ts, pid, load); err != nil {
			t.Fatal(err)
		}
	}
}

// A ShardedSystem deployed over in-process pipe workers must produce
// exactly the counts of an unsharded reference — through steady pushes, a
// drain barrier, an online rebalance, and a checkpoint taken over the
// wire; Close shuts the workers down.
func TestDialClusterEquivalence(t *testing.T) {
	ref := rumor.New()
	if err := ref.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	if err := ref.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	sys := rumor.NewSharded(rumor.ShardConfig{})
	if err := sys.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	nodes, dones := startPipeWorkers(t, 2)
	if err := sys.DialCluster(rumor.Options{Channels: true}, rumor.ClusterConfig{
		Nodes:             nodes,
		BatchSize:         8,
		HeartbeatInterval: -1,
	}); err != nil {
		t.Fatal(err)
	}
	pushPerf(t, ref.Push, 0, 200)
	pushPerf(t, sys.Push, 0, 200)
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Rebalance(); err != nil {
		t.Fatal(err)
	}
	pushPerf(t, ref.Push, 200, 400)
	pushPerf(t, sys.Push, 200, 400)
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}

	// Checkpoint over the wire: remote registries export through the same
	// RPCs rebalancing uses; the image must restore into a working local
	// deployment with identical counts.
	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := rumor.RestoreSharded(bytes.NewReader(buf.Bytes()), rumor.ShardConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()

	for _, q := range []string{"hot", "warm"} {
		if got, want := sys.ResultCount(q), ref.ResultCount(q); got != want {
			t.Fatalf("query %s: %d results, want %d", q, got, want)
		}
		if got, want := restored.ResultCount(q), ref.ResultCount(q); got != want {
			t.Fatalf("restored query %s: %d results, want %d", q, got, want)
		}
	}
	if got, want := sys.TotalResults(), ref.TotalResults(); got != want || got == 0 {
		t.Fatalf("total = %d, want %d (nonzero)", got, want)
	}

	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	for i, done := range dones {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("worker %d did not shut down after Close", i)
		}
	}
}

// The TCP path: DialCluster with bare addresses against ServeShard on
// loopback listeners, the exact shape of a real multi-process deployment.
func TestDialClusterTCP(t *testing.T) {
	ref := rumor.New()
	if err := ref.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	if err := ref.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	sys := rumor.NewSharded(rumor.ShardConfig{})
	if err := sys.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	const shards = 2
	nodes := make([]rumor.ClusterNode, shards)
	for i := 0; i < shards; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			rumor.ServeShard(lis)
		}()
		t.Cleanup(func() {
			lis.Close()
			<-done
		})
		nodes[i] = rumor.ClusterNode{Addr: lis.Addr().String()}
	}
	if err := sys.DialCluster(rumor.Options{}, rumor.ClusterConfig{Nodes: nodes, BatchSize: 8}); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pushPerf(t, ref.Push, 0, 300)
	pushPerf(t, sys.Push, 0, 300)
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"hot", "warm"} {
		if got, want := sys.ResultCount(q), ref.ResultCount(q); got != want {
			t.Fatalf("query %s: %d results, want %d", q, got, want)
		}
	}
	if got, want := sys.TotalResults(), ref.TotalResults(); got != want || got == 0 {
		t.Fatalf("total = %d, want %d (nonzero)", got, want)
	}
}

// DialCluster guards its contract: no nodes, double deployment, and a
// registered OnResult callback are all rejected up front.
func TestDialClusterRejections(t *testing.T) {
	sys := rumor.NewSharded(rumor.ShardConfig{})
	if err := sys.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	if err := sys.DialCluster(rumor.Options{}, rumor.ClusterConfig{}); err == nil {
		t.Fatal("DialCluster with no nodes should fail")
	}
	sys.OnResult(func(string, int64, []int64) {})
	nodes, _ := startPipeWorkers(t, 1)
	if err := sys.DialCluster(rumor.Options{}, rumor.ClusterConfig{Nodes: nodes}); err == nil {
		t.Fatal("DialCluster with OnResult registered should fail")
	}

	sys2 := buildShardedPerf(t, 2)
	defer sys2.Close()
	nodes2, _ := startPipeWorkers(t, 1)
	if err := sys2.DialCluster(rumor.Options{}, rumor.ClusterConfig{Nodes: nodes2}); err == nil {
		t.Fatal("DialCluster after Optimize should fail")
	}
}

// A severed worker link surfaces as ErrShardUnreachable at the public
// Push, matching with errors.Is; pushes rejected during the outage resume
// exactly after the link heals.
func TestDialClusterOutageSurfacesTypedError(t *testing.T) {
	ref := rumor.New()
	if err := ref.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	if err := ref.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	sys := rumor.NewSharded(rumor.ShardConfig{})
	if err := sys.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}

	const shards = 2
	var conns struct {
		mu sync.Mutex
		v  [shards]bool // gate: true refuses redial
		c  [shards]net.Conn
	}
	nodes := make([]rumor.ClusterNode, shards)
	for i := 0; i < shards; i++ {
		lis := transport.NewPipeListener()
		done := make(chan struct{})
		go func() {
			defer close(done)
			rumor.ServeShard(lis)
		}()
		t.Cleanup(func() {
			lis.Close()
			<-done
		})
		i := i
		nodes[i] = rumor.ClusterNode{Dial: func() (net.Conn, error) {
			conns.mu.Lock()
			gated := conns.v[i]
			conns.mu.Unlock()
			if gated {
				return nil, errors.New("gated")
			}
			nc, err := lis.Dial()
			if err != nil {
				return nil, err
			}
			conns.mu.Lock()
			conns.c[i] = nc
			conns.mu.Unlock()
			return nc, nil
		}}
	}
	if err := sys.DialCluster(rumor.Options{}, rumor.ClusterConfig{
		Nodes:             nodes,
		BatchSize:         4,
		QueueDepth:        2,
		RetryMin:          time.Millisecond,
		RetryMax:          5 * time.Millisecond,
		FailTimeout:       30 * time.Second,
		HeartbeatInterval: -1,
	}); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	pushPerf(t, ref.Push, 0, 100)
	pushPerf(t, sys.Push, 0, 100)
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}

	// Sever link 1 and gate redials.
	conns.mu.Lock()
	conns.v[1] = true
	c := conns.c[1]
	conns.mu.Unlock()
	c.Close()

	rejectedAt := int64(-1)
	for ts := int64(100); ts < 1000; ts++ {
		pid := ts % 16
		load := (ts * 7) % 101
		if err := ref.Push("CPU", ts, pid, load); err != nil {
			t.Fatal(err)
		}
		err := sys.Push("CPU", ts, pid, load)
		if err == nil {
			continue
		}
		if !errors.Is(err, rumor.ErrShardUnreachable) {
			t.Fatalf("Push during outage: %v, want ErrShardUnreachable", err)
		}
		rejectedAt = ts
		break
	}
	if rejectedAt < 0 {
		t.Fatal("outage never surfaced as ErrShardUnreachable")
	}

	conns.mu.Lock()
	conns.v[1] = false
	conns.mu.Unlock()

	deadline := time.Now().Add(time.Minute)
	for ts := rejectedAt; ts < 1000; ts++ {
		pid := ts % 16
		load := (ts * 7) % 101
		if ts > rejectedAt {
			if err := ref.Push("CPU", ts, pid, load); err != nil {
				t.Fatal(err)
			}
		}
		for {
			err := sys.Push("CPU", ts, pid, load)
			if err == nil {
				break
			}
			if !errors.Is(err, rumor.ErrShardUnreachable) || time.Now().After(deadline) {
				t.Fatalf("Push after heal: %v", err)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"hot", "warm"} {
		if got, want := sys.ResultCount(q), ref.ResultCount(q); got != want {
			t.Fatalf("query %s: %d results, want %d", q, got, want)
		}
	}
	if got, want := sys.TotalResults(), ref.TotalResults(); got != want || got == 0 {
		t.Fatalf("total = %d, want %d (nonzero)", got, want)
	}
}

// Cross-count restore: a checkpoint taken at one shard count restores at
// another (wider and narrower), rehashing keyed state and rebuilding the
// routing table; counts keep matching an unsharded reference pushed with
// the same stream before and after the restore boundary.
func TestRestoreShardedCrossCount(t *testing.T) {
	for _, newShards := range []int{1, 2, 4} {
		ref := rumor.New()
		if err := ref.ExecScript(perfScript); err != nil {
			t.Fatal(err)
		}
		if err := ref.Optimize(rumor.Options{Channels: true}); err != nil {
			t.Fatal(err)
		}
		sys := buildShardedPerf(t, 3)
		pushPerf(t, ref.Push, 0, 250)
		pushPerf(t, sys.Push, 0, 250)
		if err := sys.Drain(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := sys.Checkpoint(&buf); err != nil {
			t.Fatal(err)
		}
		if err := sys.Close(); err != nil {
			t.Fatal(err)
		}
		restored, err := rumor.RestoreSharded(bytes.NewReader(buf.Bytes()), rumor.ShardConfig{Shards: newShards, BatchSize: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got := restored.NumShards(); got != newShards {
			t.Fatalf("restored NumShards = %d, want %d", got, newShards)
		}
		pushPerf(t, ref.Push, 250, 500)
		pushPerf(t, restored.Push, 250, 500)
		if err := restored.Drain(); err != nil {
			t.Fatal(err)
		}
		for _, q := range []string{"hot", "warm"} {
			if got, want := restored.ResultCount(q), ref.ResultCount(q); got != want {
				t.Fatalf("shards 3->%d query %s: %d results, want %d", newShards, q, got, want)
			}
		}
		if got, want := restored.TotalResults(), ref.TotalResults(); got != want || got == 0 {
			t.Fatalf("shards 3->%d total = %d, want %d (nonzero)", newShards, got, want)
		}
		if err := restored.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
