package rumor

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultpoint"
	"repro/internal/mop"
	"repro/internal/obs"
	"repro/internal/rules"
	"repro/internal/shard"
	"repro/internal/wire"
)

// Checkpoint / restore: a full snapshot of a running system — the live
// physical plan (serialized structurally, not re-derived: the rule engine
// is free to make different tie-breaking choices on a re-optimization, and
// restore must reproduce operator and stream identity exactly), the
// partition plan with its routing-table version, every query's result
// counters, the frozen counts of removed queries, and every stateful
// operator group's stored window/instances as wire-encoded payloads.
//
// State is captured with a destructive peek: the uniform registry's export
// removes items, so each group side is exported in full and immediately
// re-imported in place — a merge into the emptied store that preserves
// order exactly — while the payload survives to be encoded. The system
// must be quiescent: System.Checkpoint relies on the caller not pushing
// concurrently (System is not thread-safe); ShardedSystem.Checkpoint takes
// the same batch-queue barrier as live deltas, so concurrent pushers just
// block for the duration.
//
// A sharded checkpoint records payloads per replica. Restoring into the
// same shard count is positional (keyed placement, the routing overlay,
// and replicated copies land exactly where they were); restoring into a
// different count redistributes at import time — keyed and multicast
// state re-hashes over the new width, replicated state is copied onto
// every replica, unpartitioned state folds by shard index — under a fresh
// routing table (the overlay's shard indices are meaningless at the new
// width). Checkpoints also capture and restore remote replicas: the
// registry handles a cluster deployment (NewCluster) ship state over the
// same RPCs the rebalancer uses.

// ErrShardDead reports that a shard worker died; recover with
// (*ShardedSystem).RecoverShard or restore from a checkpoint.
var ErrShardDead = shard.ErrShardDead

// ErrPartialMigration reports a mid-flight state-migration failure that
// was rolled back, leaving the engine usable under its old routing.
var ErrPartialMigration = shard.ErrPartialMigration

// exportGroups destructively peeks every stored group side of one replica
// registry: export-all, re-import in place, and append the surviving
// payload (tagged with the replica index) to groups. Keyed and multicast
// sides export under their real key attribute so the payload items carry
// partition keys — a restore into a different shard count re-hashes on
// them.
func exportGroups(reg shard.Registry, shardIdx int, dists map[int][]core.SideDist, groups *[]wire.GroupState) error {
	for _, ref := range reg.Groups() {
		for _, side := range ref.Sides {
			keyAttr := -1
			if d := core.SideDistAt(dists, ref.OpID, side); d.Dist == core.DistKeyed || d.Dist == core.DistMulticast {
				keyAttr = d.Attr
			}
			pl, err := reg.Export(ref.OpID, side, keyAttr, func(int64, int) bool { return true })
			if err != nil {
				return err
			}
			if pl.Len() == 0 {
				continue
			}
			if err := reg.Import(ref.OpID, pl, false); err != nil {
				return err
			}
			*groups = append(*groups, wire.GroupState{Shard: shardIdx, OpID: ref.OpID, Payload: pl})
		}
	}
	return nil
}

func frozenNames(removed map[string]int64) []wire.NamedCount {
	names := make([]string, 0, len(removed))
	for name := range removed {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]wire.NamedCount, len(names))
	for i, name := range names {
		out[i] = wire.NamedCount{Name: name, Count: removed[name]}
	}
	return out
}

// Checkpoint writes a full snapshot of the optimized system to w. The
// caller must not Push concurrently. The snapshot is self-contained:
// Restore rebuilds an equivalent system with identical plan shape, query
// IDs, result counts, and operator state.
func (s *System) Checkpoint(w io.Writer) error {
	if s.eng == nil {
		return fmt.Errorf("rumor: call Optimize before Checkpoint")
	}
	if err := faultpoint.Error("checkpoint.write"); err != nil {
		return err
	}
	start := time.Now()
	c := &wire.Checkpoint{
		Shards:            1,
		Channels:          s.ropts.Channels,
		ChannelMinStreams: s.ropts.ChannelMinStreams,
		Plan:              s.plan.Snapshot(),
		Frozen:            frozenNames(s.removed),
	}
	for qid, n := range s.eng.SnapshotCounts() {
		if n != 0 {
			c.Counts = append(c.Counts, wire.QueryCount{ID: qid, Count: n})
		}
	}
	dists := core.AnalyzePartition(s.plan).OpSideDists(s.plan)
	if err := exportGroups(s.eng.StateRegistry(), 0, dists, &c.Groups); err != nil {
		return err
	}
	if err := wire.WriteCheckpoint(w, c); err != nil {
		return err
	}
	obs.RecordEvent(obs.EvCheckpoint, fmt.Sprintf("shards=1 groups=%d", len(c.Groups)), time.Since(start))
	return nil
}

// restoreSystem rebuilds the unsharded core of a checkpoint: catalog,
// plan, query bookkeeping, and optimizer options.
func restoreSystem(c *wire.Checkpoint) (*System, *core.Physical, error) {
	if c.Plan == nil {
		return nil, nil, fmt.Errorf("rumor: checkpoint has no plan")
	}
	catalog, err := c.Plan.CatalogDecls()
	if err != nil {
		return nil, nil, fmt.Errorf("rumor: %w", err)
	}
	plan, err := core.RebuildPhysical(catalog, c.Plan)
	if err != nil {
		return nil, nil, fmt.Errorf("rumor: rebuilding plan: %w", err)
	}
	s := New()
	s.catalog = catalog
	s.ropts = rules.Options{Channels: c.Channels, ChannelMinStreams: c.ChannelMinStreams}
	for _, q := range plan.Queries {
		s.queries = append(s.queries, q)
		s.byName[q.Name] = q
	}
	for _, fc := range c.Frozen {
		if s.removed == nil {
			s.removed = make(map[string]int64)
		}
		s.removed[fc.Name] = fc.Count
	}
	s.plan = plan
	return s, plan, nil
}

// Restore reads a checkpoint written by (*System).Checkpoint and rebuilds
// the running system: same plan shape and IDs, same result counts, same
// operator state. Sharded checkpoints must go through RestoreSharded.
func Restore(r io.Reader) (*System, error) {
	start := time.Now()
	c, err := wire.ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if c.Partition != nil || c.Shards > 1 {
		return nil, fmt.Errorf("rumor: sharded checkpoint (%d shards); use RestoreSharded", c.Shards)
	}
	s, plan, err := restoreSystem(c)
	if err != nil {
		return nil, err
	}
	eng, err := engine.New(plan)
	if err != nil {
		return nil, err
	}
	reg := eng.StateRegistry()
	for _, g := range c.Groups {
		if g.Shard != 0 {
			return nil, fmt.Errorf("rumor: unsharded checkpoint carries state for shard %d", g.Shard)
		}
		if g.Payload.Len() == 0 {
			continue
		}
		if err := reg.Import(g.OpID, g.Payload, false); err != nil {
			return nil, fmt.Errorf("rumor: restoring operator %d state: %w", g.OpID, err)
		}
	}
	maxID := 0
	for _, qc := range c.Counts {
		if qc.ID > maxID {
			maxID = qc.ID
		}
	}
	counts := make([]int64, maxID+1)
	for _, qc := range c.Counts {
		if qc.ID < 0 {
			return nil, fmt.Errorf("rumor: negative query ID %d in checkpoint", qc.ID)
		}
		counts[qc.ID] = qc.Count
	}
	eng.RestoreCounts(counts)
	s.eng = eng
	s.wireCallback()
	obs.RecordEvent(obs.EvRestore, fmt.Sprintf("shards=1 groups=%d", len(c.Groups)), time.Since(start))
	return s, nil
}

// Checkpoint writes a full snapshot of the running sharded system to w:
// the shared plan, the partition plan (routing-table version and
// key-placement overlay included), per-replica operator state, and the
// merged counters. It runs at the same batch-queue barrier as a live
// delta — concurrent pushers block for the duration — and is serialized
// against other maintenance operations.
func (s *ShardedSystem) Checkpoint(w io.Writer) error {
	if s.sh == nil {
		return fmt.Errorf("rumor: call Optimize before Checkpoint")
	}
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	if err := faultpoint.Error("checkpoint.write"); err != nil {
		return err
	}
	start := time.Now()
	c := &wire.Checkpoint{
		Shards:            s.sh.NumShards(),
		Channels:          s.sys.ropts.Channels,
		ChannelMinStreams: s.sys.ropts.ChannelMinStreams,
		Plan:              s.sys.plan.Snapshot(),
		Partition:         s.sh.PartitionPlan(),
	}
	s.nameMu.RLock()
	c.Frozen = frozenNames(s.removed)
	queries := append([]*core.Query(nil), s.sys.queries...)
	s.nameMu.RUnlock()
	dists := c.Partition.OpSideDists(s.sys.plan)
	err := s.sh.WithQuiesced(func(regs []shard.Registry) error {
		sort.Slice(queries, func(i, j int) bool { return queries[i].ID < queries[j].ID })
		for _, q := range queries {
			if n := s.sh.ResultCount(q.ID); n != 0 {
				c.Counts = append(c.Counts, wire.QueryCount{ID: q.ID, Count: n})
			}
		}
		frozen := s.sh.FrozenCounts()
		ids := make([]int, 0, len(frozen))
		for qid := range frozen {
			ids = append(ids, qid)
		}
		sort.Ints(ids)
		for _, qid := range ids {
			c.FrozenByID = append(c.FrozenByID, wire.QueryCount{ID: qid, Count: frozen[qid]})
		}
		for i, reg := range regs {
			if err := exportGroups(reg, i, dists, &c.Groups); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := wire.WriteCheckpoint(w, c); err != nil {
		return err
	}
	obs.RecordEvent(obs.EvCheckpoint,
		fmt.Sprintf("shards=%d groups=%d", c.Shards, len(c.Groups)), time.Since(start))
	return nil
}

// RestoreSharded reads a checkpoint written by (*ShardedSystem).Checkpoint
// and rebuilds the running sharded system. With cfg.Shards zero (or equal
// to the checkpoint's count) the restore is positional: per-replica
// payloads land on the shard that wrote them, the key-placement overlay
// included. A different cfg.Shards redistributes at import time: keyed and
// multicast state re-hashes over the new width (the checkpoint payloads
// carry partition keys), replicated state is copied onto every replica,
// and unpartitioned state folds by old shard index — under a fresh routing
// table with a bumped version, since the overlay's shard indices do not
// survive a width change. Counters are width-independent (replica counters
// restore as merged bases). Unsharded checkpoints restore too, as a
// 1-shard system or redistributed across cfg.Shards.
func RestoreSharded(r io.Reader, cfg ShardConfig) (*ShardedSystem, error) {
	start := time.Now()
	c, err := wire.ReadCheckpoint(r)
	if err != nil {
		return nil, err
	}
	if c.Shards < 1 {
		return nil, fmt.Errorf("rumor: checkpoint shard count %d", c.Shards)
	}
	sys, plan, err := restoreSystem(c)
	if err != nil {
		return nil, err
	}
	part := c.Partition
	if part == nil {
		if c.Shards > 1 {
			return nil, fmt.Errorf("rumor: %d-shard checkpoint has no partition plan", c.Shards)
		}
		part = core.AnalyzePartition(plan)
	}
	shards := c.Shards
	if cfg.Shards > 0 {
		shards = cfg.Shards
	}
	if shards != c.Shards {
		// The overlay's explicit key moves name shards of the old width;
		// start the new width from pure hash placement, one version later.
		part = &core.PartitionPlan{
			Routes:          part.Routes,
			ReplicatedSinks: part.ReplicatedSinks,
			Parallel:        part.Parallel,
			Table:           &core.RoutingTable{Version: part.RoutingVersion() + 1},
		}
	}
	sh, err := shard.New(plan, part, shard.Config{
		Shards:     shards,
		BatchSize:  cfg.BatchSize,
		QueueDepth: cfg.QueueDepth,
	})
	if err != nil {
		return nil, err
	}
	err = sh.WithQuiesced(func(regs []shard.Registry) error {
		if shards == c.Shards {
			for _, g := range c.Groups {
				if g.Shard < 0 || g.Shard >= len(regs) {
					return fmt.Errorf("rumor: checkpoint state for shard %d of %d", g.Shard, len(regs))
				}
				if g.Payload.Len() == 0 {
					continue
				}
				if err := regs[g.Shard].Import(g.OpID, g.Payload, false); err != nil {
					return fmt.Errorf("rumor: restoring operator %d state on shard %d: %w", g.OpID, g.Shard, err)
				}
			}
			return nil
		}
		return redistributeGroups(c, plan, part, regs)
	})
	if err != nil {
		_ = sh.Close()
		return nil, err
	}
	base := make(map[int]int64, len(c.Counts))
	for _, qc := range c.Counts {
		base[qc.ID] = qc.Count
	}
	frozen := make(map[int]int64, len(c.FrozenByID))
	for _, qc := range c.FrozenByID {
		frozen[qc.ID] = qc.Count
	}
	sh.RestoreCounts(base, frozen)
	ss := &ShardedSystem{
		sys:  sys,
		cfg:  ShardConfig{Shards: shards, BatchSize: cfg.BatchSize, QueueDepth: cfg.QueueDepth},
		sh:   sh,
		part: part,
	}
	for _, fc := range c.Frozen {
		if ss.removed == nil {
			ss.removed = make(map[string]int64)
		}
		ss.removed[fc.Name] = fc.Count
	}
	obs.RecordEvent(obs.EvRestore,
		fmt.Sprintf("shards=%d from=%d groups=%d", shards, c.Shards, len(c.Groups)), time.Since(start))
	return ss, nil
}

// redistributeGroups imports a checkpoint's operator state into a system
// of a different shard count, applying the same placement rules the
// recovery migration uses: keyed and multicast sides merge across the old
// replicas and re-split by key ownership at the new width (duplicate
// copies of a key round-robin across its owner set), replicated sides
// place one full copy on every replica, and unpartitioned sides fold by
// old shard index.
func redistributeGroups(c *wire.Checkpoint, plan *core.Physical, part *core.PartitionPlan, regs []shard.Registry) error {
	n := len(regs)
	dists := part.OpSideDists(plan)
	type groupSide struct{ op, side int }
	var order []groupSide
	buckets := make(map[groupSide][]wire.GroupState)
	for _, g := range c.Groups {
		if g.Shard < 0 || g.Shard >= c.Shards {
			return fmt.Errorf("rumor: checkpoint state for shard %d of %d", g.Shard, c.Shards)
		}
		if g.Payload.Len() == 0 {
			continue
		}
		k := groupSide{g.OpID, g.Payload.Side()}
		if _, ok := buckets[k]; !ok {
			order = append(order, k)
		}
		buckets[k] = append(buckets[k], g)
	}
	for _, k := range order {
		bucket := buckets[k]
		d := core.SideDistAt(dists, k.op, k.side)
		switch d.Dist {
		case core.DistKeyed, core.DistMulticast:
			payloads := make([]*mop.StatePayload, len(bucket))
			for i, g := range bucket {
				payloads[i] = g.Payload
			}
			merged := mop.MergePayloads(payloads)
			if merged.Len() == 0 {
				continue
			}
			rr := make(map[int64]int)
			parts := merged.SplitBy(n, func(key int64) int {
				owners := part.Owners(key, n)
				i := rr[key]
				rr[key] = i + 1
				return owners[i%len(owners)]
			})
			for ni, pl := range parts {
				if pl.Len() == 0 {
					continue
				}
				if err := regs[ni].Import(k.op, pl, false); err != nil {
					return fmt.Errorf("rumor: restoring operator %d state on shard %d: %w", k.op, ni, err)
				}
			}
		case core.DistReplicated:
			// Every old replica checkpointed an identical copy; replicate
			// the first onto every new replica and drop the rest.
			src := bucket[0].Payload
			for i := range regs {
				if err := regs[i].Import(k.op, src, true); err != nil {
					return fmt.Errorf("rumor: restoring operator %d state on shard %d: %w", k.op, i, err)
				}
			}
			for _, g := range bucket {
				g.Payload.Discard()
			}
		default:
			for _, g := range bucket {
				if err := regs[g.Shard%n].Import(k.op, g.Payload, false); err != nil {
					return fmt.Errorf("rumor: restoring operator %d state on shard %d: %w", k.op, g.Shard%n, err)
				}
			}
		}
	}
	return nil
}

// RoutingVersion returns the routing-table version currently in effect
// (bumped by rebalances, recoveries, and re-partitioning live churn).
func (s *ShardedSystem) RoutingVersion() int {
	if s.part == nil {
		return 0
	}
	return s.part.RoutingVersion()
}

// RecoverStats reports one shard crash recovery.
type RecoverStats struct {
	Shard    int   // index of the shard that was recovered away
	Replayed int   // logged entries replayed into the dead replica
	Moved    int   // state items re-imported on survivors
	Dropped  int   // replicated copies that died with the replica
	Bytes    int   // serialized payload bytes transported
	Shards   int   // shard count after recovery
	Version  int   // routing-table version now in effect
	PauseNS  int64 // barrier to resume
}

// RecoverShard absorbs a crashed shard into the survivors: the dead
// worker's unacknowledged batches are replayed into its intact engine
// replica, its operator state is serialized and re-imported on the
// surviving shards (keyed state fully re-hashed over the shrunken count),
// and ingestion resumes over N-1 shards under a bumped routing-table
// version. Call it after an operation fails with ErrShardDead. Safe to
// call while other goroutines Push.
func (s *ShardedSystem) RecoverShard() (RecoverStats, error) {
	if s.sh == nil {
		return RecoverStats{}, fmt.Errorf("rumor: call Optimize before RecoverShard")
	}
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	st, err := s.sh.RecoverShard()
	if err == nil {
		s.part = s.sh.PartitionPlan()
	}
	return RecoverStats{
		Shard: st.Shard, Replayed: st.Replayed, Moved: st.Moved,
		Dropped: st.Dropped, Bytes: st.Bytes, Shards: st.Shards,
		Version: st.Version, PauseNS: st.Pause.Nanoseconds(),
	}, err
}

// ---------------------------------------------------------------------------
// Incremental mode: the churn-op log
// ---------------------------------------------------------------------------

// SetChurnLog attaches an incremental checkpoint log: every subsequent
// live maintenance operation (AddQueryLive, RemoveQuery) appends one
// record — the operation, the query name, its logical tree, and the plan
// delta it produced — to w. Between full snapshots, a restorer replays the
// log onto the last snapshot with ReplayChurnLog and then re-pushes the
// events that followed the snapshot; the logged deltas serve as an
// integrity check that the replayed maintenance reproduced the recorded
// query set. Pass nil to detach.
func (s *System) SetChurnLog(w io.Writer) { s.churnLog = w }

func (s *System) logChurn(op wire.ChurnOp, name string, root *Logical, d *core.Delta) error {
	if s.churnLog == nil {
		return nil
	}
	if err := wire.AppendChurnRecord(s.churnLog, &wire.ChurnRecord{Op: op, Name: name, Root: root, Delta: d}); err != nil {
		return fmt.Errorf("rumor: churn log (operation applied, log incomplete): %w", err)
	}
	return nil
}

func (s *System) logChurnAdd(name string, root *Logical, d *core.Delta) error {
	return s.logChurn(wire.ChurnAdd, name, root, d)
}

func (s *System) logChurnRemove(name string, d *core.Delta) error {
	return s.logChurn(wire.ChurnRemove, name, nil, d)
}

// SetChurnLog attaches an incremental checkpoint log (see
// (*System).SetChurnLog). Serialized against maintenance operations.
func (s *ShardedSystem) SetChurnLog(w io.Writer) {
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	s.sys.churnLog = w
}

// ChurnReplayer applies churn-log records; both System and ShardedSystem
// satisfy it.
type ChurnReplayer interface {
	AddQueryLive(name string, root *Logical) error
	RemoveQuery(name string) error
}

// ReplayChurnLog replays an incremental churn log (written via
// SetChurnLog) onto a system restored from the preceding full snapshot.
// Each add re-runs live plan maintenance — the rule engine re-derives the
// merge, and the logged delta's query membership is checked against the
// replayed one — and each remove unsubscribes again. Event tuples pushed
// after the snapshot are not in the log; re-push them after replay to
// reach the pre-crash state.
func ReplayChurnLog(sys ChurnReplayer, r io.Reader) error {
	recs, err := wire.ReadChurnLog(r)
	if err != nil {
		return err
	}
	for i, rec := range recs {
		switch rec.Op {
		case wire.ChurnAdd:
			if rec.Root == nil {
				return fmt.Errorf("rumor: churn record %d: add of %q has no plan", i, rec.Name)
			}
			if err := sys.AddQueryLive(rec.Name, rec.Root); err != nil {
				return fmt.Errorf("rumor: churn record %d: %w", i, err)
			}
			if rec.Delta != nil && len(rec.Delta.NewQueries) != 1 {
				return fmt.Errorf("rumor: churn record %d: add of %q recorded %d new queries", i, rec.Name, len(rec.Delta.NewQueries))
			}
		case wire.ChurnRemove:
			if err := sys.RemoveQuery(rec.Name); err != nil {
				return fmt.Errorf("rumor: churn record %d: %w", i, err)
			}
			if rec.Delta != nil && len(rec.Delta.RemovedQueries) != 1 {
				return fmt.Errorf("rumor: churn record %d: remove of %q recorded %d removed queries", i, rec.Name, len(rec.Delta.RemovedQueries))
			}
		default:
			return fmt.Errorf("rumor: churn record %d: unknown op %d", i, rec.Op)
		}
	}
	return nil
}

var _ ChurnReplayer = (*System)(nil)
var _ ChurnReplayer = (*ShardedSystem)(nil)
