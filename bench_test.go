// Benchmarks regenerating a representative operating point of every table
// and figure in the paper's evaluation (§5). Full sweeps (all x positions,
// both series) are produced by cmd/rumorbench; these testing.B benchmarks
// measure the steady-state per-event cost at each figure's default
// parameters (Table 3), plus ablations that isolate the effect of the
// m-rules and micro-benchmarks for the individual m-ops.
//
//	go test -bench=. -benchmem
package rumor_test

import (
	"fmt"
	"testing"

	"repro/internal/automaton"
	"repro/internal/bench"
	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/rules"
	"repro/internal/stream"
	"repro/internal/workload"
)

// feedLoop pushes b.N events, recycling the generated slice with strictly
// increasing timestamps so windows keep sliding.
func feedLoop(b *testing.B, events []workload.Event, push func(src string, t *stream.Tuple)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		push(ev.Source, &stream.Tuple{TS: int64(i), Vals: ev.Tuple.Vals})
	}
}

func rumorEngine(b *testing.B, p workload.Params, aqs []*automaton.Query, channels bool) *engine.Engine {
	b.Helper()
	cqs, err := workload.ToRUMOR(aqs)
	if err != nil {
		b.Fatal(err)
	}
	e, err := bench.BuildRUMOR(p.Catalog(), cqs, channels)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func cayugaEngine(b *testing.B, p workload.Params, aqs []*automaton.Query) *automaton.Engine {
	b.Helper()
	e := automaton.NewEngine(p.Schemas())
	for _, q := range aqs {
		if _, err := e.AddQuery(q); err != nil {
			b.Fatal(err)
		}
	}
	return e
}

// ---------------------------------------------------------------------------
// Figure 9: Workload 1 (AN + FR index), default Table 3 parameters
// ---------------------------------------------------------------------------

func BenchmarkFig9aWorkload1RUMOR(b *testing.B) {
	p := workload.DefaultParams()
	e := rumorEngine(b, p, p.Workload1(), false)
	events := p.GenStreams(50000)
	feedLoop(b, events, func(src string, t *stream.Tuple) {
		if err := e.Push(src, t); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkFig9aWorkload1RUMORBatch is the same operating point driven
// through the batched ingestion path: runs of same-source events are
// enqueued together and drained once per run.
func BenchmarkFig9aWorkload1RUMORBatch(b *testing.B) {
	const batch = 64
	p := workload.DefaultParams()
	e := rumorEngine(b, p, p.Workload1(), false)
	events := p.GenStreams(50000)
	// The trace is split into per-source runs of at most batch events. The
	// engine takes ownership of the vals slices, which is safe here: the
	// generated values are never mutated.
	b.ReportAllocs()
	b.ResetTimer()
	ts := make([]int64, 0, batch)
	vals := make([][]int64, 0, batch)
	for i := 0; i < b.N; {
		src := events[i%len(events)].Source
		ts, vals = ts[:0], vals[:0]
		for i < b.N && len(ts) < batch {
			next := events[i%len(events)]
			if next.Source != src {
				break
			}
			ts = append(ts, int64(i))
			vals = append(vals, next.Tuple.Vals)
			i++
		}
		if err := e.PushBatch(src, ts, vals); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9aWorkload1RUMORColumns drives the same operating point
// through the columnar ingest path: the trace is pre-transposed into
// per-source column windows and pushed via PushColumns onto the
// vectorized block path (timestamps are rewritten per iteration so the
// windows keep sliding).
func BenchmarkFig9aWorkload1RUMORColumns(b *testing.B) {
	const rows = 256
	p := workload.DefaultParams()
	e := rumorEngine(b, p, p.Workload1(), false)
	events := p.GenStreams(50000)
	type win struct {
		src  string
		cols [][]int64
	}
	var wins []win
	for off := 0; off+2*rows <= len(events); off += 2 * rows {
		bySrc := map[string][][]int64{}
		for _, ev := range events[off : off+2*rows] {
			cols := bySrc[ev.Source]
			if cols == nil {
				cols = make([][]int64, p.NumAttrs)
				bySrc[ev.Source] = cols
			}
			for a, v := range ev.Tuple.Vals {
				cols[a] = append(cols[a], v) // outer slice is shared with the map value
			}
		}
		for _, src := range []string{"S", "T"} {
			if cols := bySrc[src]; cols != nil {
				wins = append(wins, win{src: src, cols: cols})
			}
		}
	}
	ts := make([]int64, rows)
	b.ReportAllocs()
	b.ResetTimer()
	for i, w := 0, 0; i < b.N; w++ {
		cur := wins[w%len(wins)]
		n := min(len(cur.cols[0]), b.N-i)
		for j := 0; j < n; j++ {
			ts[j] = int64(i + j)
		}
		cols := cur.cols
		if n < len(cols[0]) {
			cols = make([][]int64, len(cur.cols))
			for a := range cols {
				cols[a] = cur.cols[a][:n]
			}
		}
		if err := e.PushColumns(cur.src, ts[:n], cols); err != nil {
			b.Fatal(err)
		}
		i += n
	}
}

func BenchmarkFig9aWorkload1Cayuga(b *testing.B) {
	p := workload.DefaultParams()
	e := cayugaEngine(b, p, p.Workload1())
	events := p.GenStreams(50000)
	feedLoop(b, events, e.Process)
}

func BenchmarkFig9bSelectiveConstants(b *testing.B) {
	p := workload.DefaultParams()
	p.ConstDomain = 10000 // more selective predicates than the default
	e := rumorEngine(b, p, p.Workload1(), false)
	events := p.GenStreams(50000)
	feedLoop(b, events, func(src string, t *stream.Tuple) {
		if err := e.Push(src, t); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkFig9cLargeWindowDomain(b *testing.B) {
	p := workload.DefaultParams()
	p.WindowDomain = 100000
	e := rumorEngine(b, p, p.Workload1(), false)
	events := p.GenStreams(50000)
	feedLoop(b, events, func(src string, t *stream.Tuple) {
		if err := e.Push(src, t); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkFig9dZipf2(b *testing.B) {
	p := workload.DefaultParams()
	p.Zipf = 2.0 // maximal query commonality
	e := rumorEngine(b, p, p.Workload1(), false)
	events := p.GenStreams(50000)
	feedLoop(b, events, func(src string, t *stream.Tuple) {
		if err := e.Push(src, t); err != nil {
			b.Fatal(err)
		}
	})
}

// ---------------------------------------------------------------------------
// Figure 10(a,b): Workload 2 (AI index)
// ---------------------------------------------------------------------------

func BenchmarkFig10aWorkload2SeqRUMOR(b *testing.B) {
	p := workload.DefaultParams()
	e := rumorEngine(b, p, p.Workload2Seq(), false)
	events := p.GenStreams(50000)
	feedLoop(b, events, func(src string, t *stream.Tuple) {
		if err := e.Push(src, t); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkFig10aWorkload2SeqCayuga(b *testing.B) {
	p := workload.DefaultParams()
	e := cayugaEngine(b, p, p.Workload2Seq())
	events := p.GenStreams(50000)
	feedLoop(b, events, e.Process)
}

func BenchmarkFig10bWorkload2MuRUMOR(b *testing.B) {
	p := workload.DefaultParams()
	p.NumQueries = 200 // µ is the expensive operator (the paper's absolutes are lower)
	e := rumorEngine(b, p, p.Workload2Mu(), false)
	events := p.GenStreams(50000)
	feedLoop(b, events, func(src string, t *stream.Tuple) {
		if err := e.Push(src, t); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkFig10bWorkload2MuCayuga(b *testing.B) {
	p := workload.DefaultParams()
	p.NumQueries = 200
	e := cayugaEngine(b, p, p.Workload2Mu())
	events := p.GenStreams(50000)
	feedLoop(b, events, e.Process)
}

// ---------------------------------------------------------------------------
// Figure 10(c,d): Workload 3 — channels. One op = one round of k+1 logical
// events (k sharable S tuples of identical content + one T tuple).
// ---------------------------------------------------------------------------

func benchW3(b *testing.B, channels bool) {
	const k = 10
	p := workload.DefaultParams()
	p.NumQueries = 1000
	qs := p.Workload3(k)
	e, err := bench.BuildRUMOR(p.Workload3Catalog(k), qs, channels)
	if err != nil {
		b.Fatal(err)
	}
	events := p.Workload3Rounds(k, 5000)
	perRound := k + 1
	nRounds := len(events) / perRound
	full := bitset.New(k)
	for i := 0; i < k; i++ {
		full.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i % nRounds) * perRound
		ts := int64(i) * int64(perRound)
		if channels {
			ev := events[base]
			t := &stream.Tuple{TS: ts, Vals: ev.Tuple.Vals, Member: full}
			if err := e.PushChannel("S1", t); err != nil {
				b.Fatal(err)
			}
		} else {
			for j := 0; j < k; j++ {
				ev := events[base+j]
				t := &stream.Tuple{TS: ts + int64(j), Vals: ev.Tuple.Vals}
				if err := e.Push(ev.Source, t); err != nil {
					b.Fatal(err)
				}
			}
		}
		tev := events[base+k]
		t := &stream.Tuple{TS: ts + int64(k), Vals: tev.Tuple.Vals}
		if err := e.Push("T", t); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10cW3WithChannel(b *testing.B) { benchW3(b, true) }

func BenchmarkFig10cW3WithoutChannel(b *testing.B) { benchW3(b, false) }

func BenchmarkFig10dCapacity25(b *testing.B) {
	const k = 25
	p := workload.DefaultParams()
	p.NumQueries = 1000
	qs := p.Workload3(k)
	e, err := bench.BuildRUMOR(p.Workload3Catalog(k), qs, true)
	if err != nil {
		b.Fatal(err)
	}
	events := p.Workload3Rounds(k, 2000)
	perRound := k + 1
	nRounds := len(events) / perRound
	full := bitset.New(k)
	for i := 0; i < k; i++ {
		full.Set(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := (i % nRounds) * perRound
		ts := int64(i) * int64(perRound)
		ev := events[base]
		if err := e.PushChannel("S1", &stream.Tuple{TS: ts, Vals: ev.Tuple.Vals, Member: full}); err != nil {
			b.Fatal(err)
		}
		tev := events[base+k]
		if err := e.Push("T", &stream.Tuple{TS: ts + int64(k), Vals: tev.Tuple.Vals}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Figure 11: hybrid queries on the perfmon trace (D1 substitute)
// ---------------------------------------------------------------------------

func benchHybrid(b *testing.B, channels bool, n int, sel float64) {
	qs := workload.DefaultHybrid(n, sel).Queries()
	e, err := bench.BuildRUMOR(workload.PerfCatalog(), qs, channels)
	if err != nil {
		b.Fatal(err)
	}
	events := workload.D1(300).Events()
	feedLoop(b, events, func(src string, t *stream.Tuple) {
		if err := e.Push(src, t); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkFig11aHybridWithChannel(b *testing.B)    { benchHybrid(b, true, 10, 0.5) }
func BenchmarkFig11aHybridWithoutChannel(b *testing.B) { benchHybrid(b, false, 10, 0.5) }
func BenchmarkFig11bHighSelWithChannel(b *testing.B)   { benchHybrid(b, true, 10, 0.9) }
func BenchmarkFig11bHighSelWithoutChannel(b *testing.B) {
	benchHybrid(b, false, 10, 0.9)
}

// ---------------------------------------------------------------------------
// Ablation: the same workload with m-rules disabled (naive plan) vs the
// optimized plan — the headline value of rule-based MQO.
// ---------------------------------------------------------------------------

func benchW1Ablation(b *testing.B, optimize bool) {
	p := workload.DefaultParams()
	p.NumQueries = 200 // naive plans evaluate every query separately
	cqs, err := workload.ToRUMOR(p.Workload1())
	if err != nil {
		b.Fatal(err)
	}
	plan := core.NewPhysical(p.Catalog())
	for _, q := range cqs {
		if err := plan.AddQuery(q); err != nil {
			b.Fatal(err)
		}
	}
	if optimize {
		if err := rules.Optimize(plan, rules.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	e, err := engine.New(plan)
	if err != nil {
		b.Fatal(err)
	}
	events := p.GenStreams(50000)
	feedLoop(b, events, func(src string, t *stream.Tuple) {
		if err := e.Push(src, t); err != nil {
			b.Fatal(err)
		}
	})
}

func BenchmarkAblationW1NaivePlan(b *testing.B)     { benchW1Ablation(b, false) }
func BenchmarkAblationW1OptimizedPlan(b *testing.B) { benchW1Ablation(b, true) }

// ---------------------------------------------------------------------------
// Sharded runtime: parallel scaling over Workloads 1–3. Wall-clock
// speedup needs one core per shard; on smaller hosts the per-shard busy
// split (rumorbench -fig scale) is the scaling signal.
// ---------------------------------------------------------------------------

// benchSharded drives b.N events through a sharded engine (ingest + final
// drain timed).
func benchSharded(b *testing.B, catalog map[string]core.SourceDecl, qs []*core.Query, events []workload.Event, shards int) {
	b.Helper()
	e, err := bench.BuildSharded(catalog, qs, false, shards)
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := events[i%len(events)]
		if err := e.Push(ev.Source, int64(i), ev.Tuple.Vals); err != nil {
			b.Fatal(err)
		}
	}
	if err := e.Drain(); err != nil {
		b.Fatal(err)
	}
}

func benchShardedW1(b *testing.B, shards int) {
	p := workload.DefaultParams()
	qs, err := workload.ToRUMOR(p.Workload1())
	if err != nil {
		b.Fatal(err)
	}
	benchSharded(b, p.Catalog(), qs, p.GenStreams(50000), shards)
}

func BenchmarkShardedFig9aW1Shards1(b *testing.B) { benchShardedW1(b, 1) }
func BenchmarkShardedFig9aW1Shards2(b *testing.B) { benchShardedW1(b, 2) }
func BenchmarkShardedFig9aW1Shards4(b *testing.B) { benchShardedW1(b, 4) }

func benchShardedW2(b *testing.B, shards int) {
	p := workload.DefaultParams()
	qs, err := workload.ToRUMOR(p.Workload2Seq())
	if err != nil {
		b.Fatal(err)
	}
	benchSharded(b, p.Catalog(), qs, p.GenStreams(50000), shards)
}

func BenchmarkShardedW2SeqShards1(b *testing.B) { benchShardedW2(b, 1) }
func BenchmarkShardedW2SeqShards4(b *testing.B) { benchShardedW2(b, 4) }

func benchShardedW3(b *testing.B, shards int) {
	const k = 10
	p := workload.DefaultParams()
	benchSharded(b, p.Workload3Catalog(k), p.Workload3(k), p.Workload3Rounds(k, 5000), shards)
}

func BenchmarkShardedW3Shards1(b *testing.B) { benchShardedW3(b, 1) }
func BenchmarkShardedW3Shards4(b *testing.B) { benchShardedW3(b, 4) }

// ---------------------------------------------------------------------------
// Micro-benchmarks for individual m-ops
// ---------------------------------------------------------------------------

// BenchmarkMicroPredicateIndex: 10 000 equality selections over one stream
// collapsed into one predicate-indexed m-op ([10,16]).
func BenchmarkMicroPredicateIndex(b *testing.B) {
	sys := newSelectSystem(b, 10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.Push("S", int64(i), int64(i%10000), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func newSelectSystem(b *testing.B, n int) *sysWrap {
	b.Helper()
	p := workload.DefaultParams()
	p.NumQueries = n
	var qs []*core.Query
	for i := 0; i < n; i++ {
		qs = append(qs, core.NewQuery(fmt.Sprintf("q%d", i),
			core.SelectL(expr.ConstCmp{Attr: 0, Op: expr.Eq, C: int64(i)}, core.Scan("S"))))
	}
	cat := map[string]core.SourceDecl{"S": {Schema: stream.MustSchema("S", "a", "b")}}
	e, err := bench.BuildRUMOR(cat, qs, false)
	if err != nil {
		b.Fatal(err)
	}
	return &sysWrap{e: e}
}

type sysWrap struct{ e *engine.Engine }

func (s *sysWrap) Push(src string, ts int64, vals ...int64) error {
	return s.e.Push(src, &stream.Tuple{TS: ts, Vals: vals})
}

// BenchmarkMicroSharedJoin: 100 equi-joins with different windows sharing
// one state ([12]).
func BenchmarkMicroSharedJoin(b *testing.B) {
	var qs []*core.Query
	for i := 0; i < 100; i++ {
		qs = append(qs, core.NewQuery(fmt.Sprintf("j%d", i),
			core.JoinL(expr.AttrCmp2{L: 0, Op: expr.Eq, R: 0}, int64(10+i), core.Scan("S"), core.Scan("T"))))
	}
	cat := map[string]core.SourceDecl{
		"S": {Schema: stream.MustSchema("S", "a", "b")},
		"T": {Schema: stream.MustSchema("T", "a", "b")},
	}
	e, err := bench.BuildRUMOR(cat, qs, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := "S"
		if i%2 == 1 {
			src = "T"
		}
		if err := e.Push(src, &stream.Tuple{TS: int64(i), Vals: []int64{int64(i % 500), 0}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMicroSharedAgg: 50 aggregations (same function/window, varied
// group-by) sharing one m-op ([22]).
func BenchmarkMicroSharedAgg(b *testing.B) {
	var qs []*core.Query
	for i := 0; i < 50; i++ {
		gb := []int{0}
		if i%2 == 1 {
			gb = nil
		}
		qs = append(qs, core.NewQuery(fmt.Sprintf("a%d", i),
			core.AggL(core.AggAvg, 1, 100, gb, core.Scan("S"))))
	}
	cat := map[string]core.SourceDecl{"S": {Schema: stream.MustSchema("S", "a", "b")}}
	e, err := bench.BuildRUMOR(cat, qs, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Push("S", &stream.Tuple{TS: int64(i), Vals: []int64{int64(i % 16), int64(i % 97)}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationW1NoSeqMerge isolates the AN-index m-rule: selections
// are still predicate-indexed, but the ; operators stay in separate m-ops,
// so every T tuple is dispatched to every pattern query's node.
func BenchmarkAblationW1NoSeqMerge(b *testing.B) {
	p := workload.DefaultParams()
	p.NumQueries = 200
	cqs, err := workload.ToRUMOR(p.Workload1())
	if err != nil {
		b.Fatal(err)
	}
	plan := core.NewPhysical(p.Catalog())
	for _, q := range cqs {
		if err := plan.AddQuery(q); err != nil {
			b.Fatal(err)
		}
	}
	partial := &rules.Optimizer{Rules: []rules.Rule{
		rules.CSE{},
		rules.MergeSameInput{Kind: core.KindSelect},
	}}
	if _, err := partial.Run(plan); err != nil {
		b.Fatal(err)
	}
	e, err := engine.New(plan)
	if err != nil {
		b.Fatal(err)
	}
	events := p.GenStreams(50000)
	feedLoop(b, events, func(src string, t *stream.Tuple) {
		if err := e.Push(src, t); err != nil {
			b.Fatal(err)
		}
	})
}
