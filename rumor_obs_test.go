package rumor_test

import (
	"net"
	"strings"
	"testing"

	rumor "repro"
	"repro/internal/expr"
)

// startTCPWorkers serves n shard workers on loopback TCP listeners.
func startTCPWorkers(t *testing.T, n int) []rumor.ClusterNode {
	t.Helper()
	nodes := make([]rumor.ClusterNode, n)
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			rumor.ServeShard(lis)
		}()
		t.Cleanup(func() {
			lis.Close()
			<-done
		})
		nodes[i] = rumor.ClusterNode{Addr: lis.Addr().String()}
	}
	return nodes
}

// withMetrics enables metric collection for one test and restores the
// process-wide default afterwards (tests share the obs registry).
func withMetrics(t *testing.T) {
	t.Helper()
	prev := rumor.MetricsEnabled()
	rumor.EnableMetrics(true)
	t.Cleanup(func() { rumor.EnableMetrics(prev) })
}

// A local System's snapshot must carry the engine counters and agree with
// the public result counter.
func TestSystemMetricsLocal(t *testing.T) {
	withMetrics(t)
	sys := rumor.New()
	if err := sys.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	pushPerf(t, sys.Push, 0, 300)
	m := sys.Metrics()
	if got := m.Counters["engine_results_total"]; got != sys.TotalResults() {
		t.Fatalf("engine_results_total = %d, want TotalResults %d", got, sys.TotalResults())
	}
	if m.Counters["engine_tuples_delivered_total"] == 0 {
		t.Fatal("engine_tuples_delivered_total = 0 after 300 pushes")
	}
	if m.Counters["engine_op_processed_total"] == 0 {
		t.Fatal("engine_op_processed_total = 0 after 300 pushes")
	}
}

// Live maintenance must show up in the registry histograms and the trace
// ring.
func TestLiveMaintenanceTelemetry(t *testing.T) {
	withMetrics(t)
	sys := rumor.New()
	if err := sys.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	pushPerf(t, sys.Push, 0, 100)
	cold := rumor.Filter(expr.ConstCmp{Attr: 1, Op: expr.Gt, C: 95}, rumor.Scan("CPU"))
	if err := sys.AddQueryLive("cold", cold); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveQuery("cold"); err != nil {
		t.Fatal(err)
	}
	m := sys.Metrics()
	if h, ok := m.Hists["live_add_ns"]; !ok || h.Count == 0 {
		t.Fatalf("live_add_ns histogram missing or empty: %+v", h)
	}
	if h, ok := m.Hists["live_remove_ns"]; !ok || h.Count == 0 {
		t.Fatalf("live_remove_ns histogram missing or empty: %+v", h)
	}
	var sawAdd, sawRemove bool
	for _, ev := range rumor.TraceEvents() {
		if ev.Kind == "query_add" && strings.Contains(ev.Detail, "query=cold") {
			sawAdd = true
		}
		if ev.Kind == "query_remove" && strings.Contains(ev.Detail, "query=cold") {
			sawRemove = true
		}
	}
	if !sawAdd || !sawRemove {
		t.Fatalf("trace ring missing query_add/query_remove for cold (add=%v remove=%v)", sawAdd, sawRemove)
	}
}

func checkShardedMetrics(t *testing.T, sys *rumor.ShardedSystem, shards int, remote bool) {
	t.Helper()
	m, err := sys.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Counters["engine_results_total"]; got < sys.TotalResults() {
		t.Fatalf("merged engine_results_total = %d, want ≥ TotalResults %d", got, sys.TotalResults())
	}
	if m.Counters["engine_tuples_delivered_total"] == 0 {
		t.Fatal("merged engine_tuples_delivered_total = 0")
	}
	var tuples int64
	for i := 0; i < shards; i++ {
		tuples += m.Counters[`shard_tuples_total{shard="`+string(rune('0'+i))+`"}`]
	}
	if tuples == 0 {
		t.Fatal("per-shard shard_tuples_total series sum to 0")
	}
	if remote {
		if m.Counters["worker_batches_applied_total"] == 0 {
			t.Fatal("remote deployment reported no worker_batches_applied_total")
		}
		if m.Counters["transport_frames_sent_total"] == 0 {
			t.Fatal("remote deployment reported no transport frames")
		}
	}
}

// An in-process sharded system merges per-shard engine snapshots.
func TestShardedMetricsLocal(t *testing.T) {
	withMetrics(t)
	sys := buildShardedPerf(t, 2)
	defer sys.Close()
	pushPerf(t, sys.Push, 0, 400)
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	checkShardedMetrics(t, sys, 2, false)
}

// A cluster deployment over pipe transports merges worker snapshots via
// the stats RPC.
func TestShardedMetricsPipeCluster(t *testing.T) {
	withMetrics(t)
	sys := rumor.NewSharded(rumor.ShardConfig{})
	if err := sys.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	nodes, _ := startPipeWorkers(t, 2)
	if err := sys.DialCluster(rumor.Options{Channels: true}, rumor.ClusterConfig{
		Nodes:             nodes,
		BatchSize:         8,
		HeartbeatInterval: -1,
	}); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pushPerf(t, sys.Push, 0, 400)
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	checkShardedMetrics(t, sys, 2, true)

	health := sys.WorkerHealth()
	if len(health) != 2 {
		t.Fatalf("WorkerHealth reported %d shards, want 2", len(health))
	}
	for _, h := range health {
		if !h.Remote {
			t.Fatalf("shard %d not marked remote", h.Shard)
		}
		if h.BootID == 0 {
			t.Fatalf("shard %d has no boot ID", h.Shard)
		}
		if h.Down || h.Dead {
			t.Fatalf("shard %d unexpectedly down/dead: %+v", h.Shard, h)
		}
	}
}

// The same merge must work over real TCP (acceptance: pipe AND TCP).
func TestShardedMetricsTCPCluster(t *testing.T) {
	withMetrics(t)
	sys := rumor.NewSharded(rumor.ShardConfig{})
	if err := sys.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	nodes := startTCPWorkers(t, 2)
	if err := sys.DialCluster(rumor.Options{Channels: true}, rumor.ClusterConfig{
		Nodes:             nodes,
		BatchSize:         8,
		HeartbeatInterval: -1,
	}); err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	pushPerf(t, sys.Push, 0, 400)
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	checkShardedMetrics(t, sys, 2, true)
}

// PlanInfo must surface the membership-width and multicast-table columns.
func TestPlanInfoTelemetryColumns(t *testing.T) {
	sys := rumor.New()
	if err := sys.ExecScript(perfScript); err != nil {
		t.Fatal(err)
	}
	if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	info := sys.PlanInfo()
	if info.Channels > 0 && info.ChannelWords == 0 {
		t.Fatalf("plan has %d channels but 0 channel words", info.Channels)
	}
	if info.SpilledChannels != 0 {
		t.Fatalf("tiny plan reports %d spilled channels", info.SpilledChannels)
	}
}
