// Package rumor is a Go implementation of RUMOR, the rule-based
// multi-query optimization (MQO) framework for data stream systems of
// Hong et al., "Rule-Based Multi-Query Optimization", EDBT 2009.
//
// RUMOR generalizes the three core abstractions of a stream engine:
// physical operators become m-ops (each implementing a set of operators),
// transformation rules become m-rules (which merge operator sets into
// m-ops), and streams become channels (stream unions whose tuples carry
// membership bit vectors). A single engine then evaluates CQL-style
// relational stream queries, Cayuga-style event pattern queries, and
// hybrid queries, sharing state and computation across all of them.
//
// The System type is the embedding API: declare streams, register
// continuous queries (via the query language or programmatically with the
// re-exported builders), optimize, and push tuples:
//
//	sys := rumor.New()
//	err := sys.ExecScript(`
//	    CREATE STREAM CPU(pid, load);
//	    LET smoothed := AGG(avg(load) OVER 60 BY pid FROM CPU);
//	    QUERY hot := FILTER(load > 90, @smoothed);
//	`)
//	sys.OnResult(func(q string, ts int64, vals []int64) { ... })
//	err = sys.Optimize(rumor.Options{Channels: true})
//	err = sys.Push("CPU", 0, 17, 95)
//
// Subpackages (internal): core (plans, m-ops as plan nodes, channels),
// rules (the m-rules and optimizer), mop (executable m-ops: predicate
// indexing, shared aggregation/join, the Cayuga ; and µ operators with
// FR/AN/AI indexes, channel modes), engine (execution), automaton (the
// Cayuga baseline and the §4.2 automaton→plan translation), cql (query
// language), workload and bench (the paper's evaluation).
package rumor

import (
	"fmt"
	"io"
	"time"

	"repro/internal/bitset"
	"repro/internal/core"
	"repro/internal/cql"
	"repro/internal/engine"
	"repro/internal/live"
	"repro/internal/rules"
	"repro/internal/stream"
)

// Logical is a logical query plan node; build trees with Scan, Filter,
// Project, Agg, Join, Seq and Mu (re-exported from the core package).
type Logical = core.Logical

// Builders for programmatic query construction.
var (
	// Scan reads a declared source stream.
	Scan = core.Scan
	// Filter applies a selection predicate (package expr).
	Filter = core.SelectL
	// Project applies a schema map.
	Project = core.ProjectL
	// Agg applies a sliding-window aggregate.
	Agg = core.AggL
	// Join is a windowed two-stream join.
	Join = core.JoinL
	// Seq is the Cayuga sequence operator (;).
	Seq = core.SeqL
	// Mu is the Cayuga iteration operator (µ).
	Mu = core.MuL
)

// Aggregate functions for Agg.
const (
	Sum   = core.AggSum
	Count = core.AggCount
	Avg   = core.AggAvg
	Min   = core.AggMin
	Max   = core.AggMax
)

// Options configures optimization.
type Options struct {
	// Channels enables the channel-based m-rules (cσ, cα, c⨝, c;, cµ).
	Channels bool
	// ChannelMinStreams gates the channel rules: a candidate operator
	// group must cover at least this many distinct sharable streams
	// (0 = the default of 2). Larger values trade sharing for lower
	// membership overhead (§3.2).
	ChannelMinStreams int
}

// PlanInfo summarizes the optimized plan.
type PlanInfo struct {
	Queries   int // registered continuous queries
	MOps      int // m-op nodes (excluding sources)
	Operators int // operator instances implemented by the m-ops
	Channels  int // edges encoding more than one stream
	Streams   int // logical streams

	// LiveSlots / TotalSlots measure channel membership width: live
	// streams vs total encoded slots (including tombstones left by live
	// query removal), summed over the channel edges. Channel compaction
	// keeps LiveSlots ≥ TotalSlots/2 in steady state, so membership words
	// stay bounded under sustained add/remove churn.
	LiveSlots  int
	TotalSlots int

	// ChannelWords is the total membership words backing the channel
	// edges; SpilledChannels counts channels whose membership no longer
	// fits one inline word (each tuple on such a channel carries a heap
	// bitset — engine_member_spills_total counts the per-tuple cost).
	ChannelWords    int
	SpilledChannels int
	// MulticastKeys is the total number of distinct partner constants in
	// the multicast routing tables (sharded systems only; 0 otherwise).
	MulticastKeys int

	// BlockEdges counts plan edges statically capable of carrying
	// columnar blocks (producer and all consumers vectorize, membership
	// fits one word); BlocksProcessed is the number of blocks the engine
	// has actually delivered along such edges — 0 when every push took
	// the scalar path.
	BlockEdges      int
	BlocksProcessed int64
}

// System is a RUMOR stream-processing instance.
type System struct {
	catalog map[string]core.SourceDecl
	queries []*core.Query
	byName  map[string]*core.Query

	plan *core.Physical
	eng  *engine.Engine

	// ropts preserves the optimization options for incremental (live)
	// rule application after Optimize.
	ropts rules.Options

	// removed maps names of live-removed queries to their frozen final
	// result counts.
	removed map[string]int64

	// churnLog, when set, receives one wire.ChurnRecord per successful
	// live maintenance operation (incremental checkpoint mode).
	churnLog io.Writer

	onResult func(query string, ts int64, vals []int64)
}

// New creates an empty system.
func New() *System {
	return &System{
		catalog: make(map[string]core.SourceDecl),
		byName:  make(map[string]*core.Query),
	}
}

// DeclareStream registers a source stream with the given attributes. A
// non-empty sharableLabel marks streams of the same label as sharable
// sources (§3.2 base case 2), making them candidates for channel encoding.
func (s *System) DeclareStream(name, sharableLabel string, attrs ...string) error {
	if _, dup := s.catalog[name]; dup {
		return fmt.Errorf("rumor: stream %q already declared", name)
	}
	sch, err := stream.NewSchema(name, attrs...)
	if err != nil {
		return fmt.Errorf("rumor: %w", err)
	}
	// Declaring after Optimize is allowed: the new stream enters the
	// running plan when an AddQueryLive first scans it.
	s.catalog[name] = core.SourceDecl{Schema: sch, Label: sharableLabel}
	return nil
}

// ExecScript parses a CQL script, merging its stream declarations and
// registering its queries.
func (s *System) ExecScript(src string) error {
	if s.plan != nil {
		return fmt.Errorf("rumor: cannot add queries after Optimize")
	}
	script, err := cql.Parse(src)
	if err != nil {
		return err
	}
	for name, decl := range script.Catalog {
		if _, dup := s.catalog[name]; dup {
			return fmt.Errorf("rumor: stream %q already declared", name)
		}
		s.catalog[name] = decl
	}
	for _, q := range script.Queries {
		if err := s.addQuery(q); err != nil {
			return err
		}
	}
	return nil
}

// AddQuery registers a programmatically built continuous query.
func (s *System) AddQuery(name string, root *Logical) error {
	if s.plan != nil {
		return fmt.Errorf("rumor: cannot add queries after Optimize")
	}
	return s.addQuery(core.NewQuery(name, root))
}

func (s *System) addQuery(q *core.Query) error {
	if _, dup := s.byName[q.Name]; dup {
		return fmt.Errorf("rumor: query %q already registered", q.Name)
	}
	s.queries = append(s.queries, q)
	s.byName[q.Name] = q
	return nil
}

// OnResult registers the result callback. Must be called before Optimize
// or at any time after; results are attributed by query name.
func (s *System) OnResult(fn func(query string, ts int64, vals []int64)) {
	s.onResult = fn
	if s.eng != nil {
		s.wireCallback()
	}
}

// buildPlan plans all registered queries and applies the m-rules.
func (s *System) buildPlan(opt Options) (*core.Physical, error) {
	if s.plan != nil {
		return nil, fmt.Errorf("rumor: already optimized")
	}
	if len(s.queries) == 0 {
		return nil, fmt.Errorf("rumor: no queries registered")
	}
	plan := core.NewPhysical(s.catalog)
	for _, q := range s.queries {
		if err := plan.AddQuery(q); err != nil {
			return nil, err
		}
	}
	ropts := rules.Options{Channels: opt.Channels, ChannelMinStreams: opt.ChannelMinStreams}
	if err := rules.Optimize(plan, ropts); err != nil {
		return nil, err
	}
	s.ropts = ropts
	return plan, nil
}

// Optimize plans all registered queries, applies the m-rules, and builds
// the execution engine. It must be called exactly once; afterwards the
// query set evolves through AddQueryLive and RemoveQuery (the §7 "future
// work" of the paper, implemented here as incremental plan maintenance).
func (s *System) Optimize(opt Options) error {
	plan, err := s.buildPlan(opt)
	if err != nil {
		return err
	}
	eng, err := engine.New(plan)
	if err != nil {
		return err
	}
	s.plan = plan
	s.eng = eng
	s.wireCallback()
	return nil
}

// AddQueryLive registers a continuous query on a running system: the
// query is planned naively into the live physical plan, the m-rules are
// re-applied incrementally (merging the new operators into the existing
// shared m-ops and growing channel memberships append-only), and the
// resulting delta is spliced into the engine's routing tables without
// touching the operator state of the running queries. Before Optimize it
// is equivalent to AddQuery.
//
// The new query starts from the shared state its merged operators expose:
// a query that collapses onto an identical running operator (CSE) adopts
// that operator's history outright; a query merged into a plain shared
// group observes the group's stored window; and a query merged into a
// channel-mode agg/join/seq group at a fresh membership position has the
// group's retained window replayed under its bit — the stored items are
// re-filtered through the query's gating selections, so a mid-stream
// subscriber over a single-source channel sees full-window results from
// its first batch (exactly the results a from-scratch plan retains,
// whenever the shared store's contents cover the new gating — e.g. the
// gating predicate is implied by a live member's). Channel growth reuses
// tombstoned membership slots before widening, so an add/remove/add cycle
// of the same query does not grow the membership words.
func (s *System) AddQueryLive(name string, root *Logical) error {
	if s.plan == nil {
		return s.AddQuery(name, root)
	}
	if _, dup := s.byName[name]; dup {
		return fmt.Errorf("rumor: query %q already registered", name)
	}
	start := time.Now()
	q := core.NewQuery(name, root)
	m := live.NewMaintainer(s.plan, s.ropts)
	d, err := m.AddQuery(q)
	if err != nil {
		return fmt.Errorf("rumor: %w", err)
	}
	if err := live.Apply(d, s.eng); err != nil {
		return fmt.Errorf("rumor: %w", err)
	}
	s.queries = append(s.queries, q)
	s.byName[name] = q
	delete(s.removed, name)
	s.wireCallback()
	noteLiveAdd(name, d, time.Since(start))
	return s.logChurnAdd(name, root, d)
}

// RemoveQuery unsubscribes a continuous query. On a running system the
// operators serving only this query are garbage-collected (reference
// counts of shared operators drop; channel membership positions are
// tombstoned; exclusively owned window and instance state is discarded),
// and the engine's routing tables are updated in place. Channels whose
// tombstones come to dominate are compacted in the same step: dead
// positions are dropped and the memberships stored inside the running
// m-ops are rewritten through the position remap, keeping membership
// words bounded under sustained churn (live/total slots ≥ 1/2). The
// removed query's final result count stays available through ResultCount
// and remains part of TotalResults.
func (s *System) RemoveQuery(name string) error {
	q, ok := s.byName[name]
	if !ok {
		return fmt.Errorf("rumor: query %q not registered", name)
	}
	if s.plan == nil {
		delete(s.byName, name)
		s.queries = removeQueryFrom(s.queries, q)
		return nil
	}
	start := time.Now()
	final := s.eng.ResultCount(q.ID)
	m := live.NewMaintainer(s.plan, s.ropts)
	d, err := m.RemoveQuery(q.ID)
	if err != nil {
		return fmt.Errorf("rumor: %w", err)
	}
	if err := live.Apply(d, s.eng); err != nil {
		return fmt.Errorf("rumor: %w", err)
	}
	delete(s.byName, name)
	s.queries = removeQueryFrom(s.queries, q)
	if s.removed == nil {
		s.removed = make(map[string]int64)
	}
	s.removed[name] = final
	s.wireCallback()
	noteLiveRemove(name, d, time.Since(start))
	return s.logChurnRemove(name, d)
}

func removeQueryFrom(qs []*core.Query, q *core.Query) []*core.Query {
	out := qs[:0]
	for _, x := range qs {
		if x != q {
			out = append(out, x)
		}
	}
	return out
}

func (s *System) wireCallback() {
	if s.onResult == nil {
		s.eng.OnResult = nil
		return
	}
	names := make(map[int]string, len(s.queries))
	for _, q := range s.queries {
		names[q.ID] = q.Name
	}
	fn := s.onResult
	s.eng.OnResult = func(qid int, t *stream.Tuple) {
		fn(names[qid], t.TS, t.Vals)
	}
}

// Push injects one tuple into a source stream. Tuples must be pushed in
// non-decreasing timestamp order across all sources.
func (s *System) Push(streamName string, ts int64, vals ...int64) error {
	if s.eng == nil {
		return fmt.Errorf("rumor: call Optimize before Push")
	}
	return s.eng.Push(streamName, &stream.Tuple{TS: ts, Vals: vals})
}

// PushBatch injects a batch of tuples into one source stream, enqueuing
// the whole batch before a single propagation drain. ts[i] pairs with
// vals[i]; timestamps must be non-decreasing and must not precede tuples
// pushed later on other sources that should be processed first — batching
// trades per-call overhead for coarser interleaving with other sources.
// Per-query result streams match per-tuple Push whenever every
// multi-input operator reads this source through paths of equal operator
// depth (true of typical plans; a source that feeds one join/sequence
// through paths of differing depth should stick to Push), though OnResult
// calls for different queries may interleave differently within a batch.
// The engine takes ownership of the vals slices.
func (s *System) PushBatch(streamName string, ts []int64, vals [][]int64) error {
	if s.eng == nil {
		return fmt.Errorf("rumor: call Optimize before PushBatch")
	}
	return s.eng.PushBatch(streamName, ts, vals)
}

// PushColumns injects a batch given column-major: ts[i] pairs with
// cols[a][i] (one slice per attribute). This is the zero-copy entry to the
// vectorized execution path — the engine wraps the slices into blocks for
// the duration of the drain and returns ownership to the caller, never
// exploding the batch into per-row tuples. The ordering caveats of
// PushBatch apply.
func (s *System) PushColumns(streamName string, ts []int64, cols [][]int64) error {
	if s.eng == nil {
		return fmt.Errorf("rumor: call Optimize before PushColumns")
	}
	return s.eng.PushColumns(streamName, ts, cols)
}

// SetBlockSize tunes the vectorized ingest path: batches are segmented
// into columnar blocks of at most n rows (0 restores the default, n < 0
// disables vectorization entirely, forcing the scalar per-tuple path).
// Call between pushes, not concurrently with them.
func (s *System) SetBlockSize(n int) error {
	if s.eng == nil {
		return fmt.Errorf("rumor: call Optimize before SetBlockSize")
	}
	s.eng.SetBlockSize(n)
	return nil
}

// PushShared injects one channel tuple that belongs to all the named
// sharable source streams at once (they must have been encoded into the
// same channel by optimization).
func (s *System) PushShared(streamNames []string, ts int64, vals ...int64) error {
	if s.eng == nil {
		return fmt.Errorf("rumor: call Optimize before PushShared")
	}
	if len(streamNames) == 0 {
		return fmt.Errorf("rumor: PushShared needs at least one stream")
	}
	member := bitset.New(len(streamNames))
	var edgeID = -1
	for _, name := range streamNames {
		ref := s.plan.SourceStream(name)
		if ref == nil {
			return fmt.Errorf("rumor: source %q not in plan", name)
		}
		e, pos := s.plan.EdgeOf(ref)
		if edgeID == -1 {
			edgeID = e.ID
		} else if e.ID != edgeID {
			return fmt.Errorf("rumor: streams %v are not encoded into one channel", streamNames)
		}
		member.Set(pos)
	}
	t := &stream.Tuple{TS: ts, Vals: vals, Member: member}
	return s.eng.PushChannel(streamNames[0], t)
}

// ResultCount returns the number of results produced so far for a query.
// A query removed live reports its frozen final count.
func (s *System) ResultCount(query string) int64 {
	q, ok := s.byName[query]
	if !ok || s.eng == nil {
		return s.removed[query]
	}
	return s.eng.ResultCount(q.ID)
}

// TotalResults returns the number of results across all queries,
// including the final counts of queries removed live.
func (s *System) TotalResults() int64 {
	if s.eng == nil {
		return 0
	}
	return s.eng.TotalResults()
}

// PlanInfo returns summary statistics of the optimized plan.
func (s *System) PlanInfo() PlanInfo {
	if s.plan == nil {
		return PlanInfo{}
	}
	st := s.plan.Stats()
	sources := 0
	ops := 0
	for _, n := range s.plan.Nodes {
		if n.Kind == core.KindSource {
			sources++
			continue
		}
		ops += len(n.Ops)
	}
	info := PlanInfo{
		Queries:         st.Queries,
		MOps:            st.Nodes - sources,
		Operators:       ops,
		Channels:        st.Channels,
		Streams:         st.Streams,
		LiveSlots:       st.LiveSlots,
		TotalSlots:      st.TotalSlots,
		ChannelWords:    st.ChannelWords,
		SpilledChannels: st.SpilledChannels,
		BlockEdges:      st.BlockEdges,
	}
	if s.eng != nil {
		info.BlocksProcessed = s.eng.BlocksProcessed()
	}
	return info
}

// PlanString renders the optimized physical plan for inspection.
func (s *System) PlanString() string {
	if s.plan == nil {
		return "(not optimized)"
	}
	return s.plan.String()
}

// PlanDot renders the optimized physical plan in Graphviz dot format
// (channels drawn as dashed edges, as in the paper's figures).
func (s *System) PlanDot() string {
	if s.plan == nil {
		return "digraph rumor {}\n"
	}
	return s.plan.Dot()
}
