package rumor_test

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"testing"

	rumor "repro"
	"repro/internal/core"
	"repro/internal/faultpoint"
	"repro/internal/workload"
)

// Checkpoint → Restore on a churned engine: after ≥500 live add/remove
// operations interleaved with pushes, a restored system must reproduce
// the original's PlanInfo (including live/total slot accounting), frozen
// counts, and — on the next 10k events pushed into both — identical
// per-query results.

// churnThenCheckpoint drives ops churn operations (half adds, half
// removes of transient queries) interleaved with pushes of warm.
func churnTransients(t *testing.T, sys churnSys, trans []*core.Query, warm []workload.Event, ops int) {
	t.Helper()
	adds := ops/2 + 2 // two transients stay in flight and are never removed
	chunk := len(warm) / (adds + 1)
	removeAt := 2 // keep a couple of transients in flight
	added, removed := 0, 0
	for i := 0; i < adds; i++ {
		lo := i * chunk
		for _, ev := range warm[lo : lo+chunk] {
			if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
				t.Fatal(err)
			}
		}
		name := fmt.Sprintf("tr_%d", i)
		if err := sys.AddQueryLive(name, trans[i%len(trans)].Root); err != nil {
			t.Fatal(err)
		}
		added++
		if added-removed > removeAt {
			if err := sys.RemoveQuery(fmt.Sprintf("tr_%d", removed)); err != nil {
				t.Fatal(err)
			}
			removed++
		}
	}
	for ; removed < added-removeAt; removed++ {
		if err := sys.RemoveQuery(fmt.Sprintf("tr_%d", removed)); err != nil {
			t.Fatal(err)
		}
	}
	for _, ev := range warm[adds*chunk:] {
		if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	if added+removed < ops {
		t.Fatalf("only %d churn ops, want ≥ %d", added+removed, ops)
	}
}

type restorableSys interface {
	churnSys
	Checkpoint(w io.Writer) error
	PlanInfo() rumor.PlanInfo
	Settle() // drain; no-op for the single-threaded System
}

// sysAdapter lifts *rumor.System / *rumor.ShardedSystem into the harness
// interface.
type sysAdapter struct {
	churnSys
	ckpt   func(io.Writer) error
	info   func() rumor.PlanInfo
	settle func()
}

func (a sysAdapter) Checkpoint(w io.Writer) error { return a.ckpt(w) }
func (a sysAdapter) PlanInfo() rumor.PlanInfo     { return a.info() }
func (a sysAdapter) Settle() {
	if a.settle != nil {
		a.settle()
	}
}

func checkpointRestoreChurned(t *testing.T, mk func() restorableSys,
	restore func([]byte) restorableSys) {
	t.Helper()
	catalog, surv, events := churnWorkload(t, "w2", 24, 4000, 5)
	_, trans, _ := churnWorkload(t, "w2", 24, 0, 77)
	p := workload.DefaultParams()
	p.Seed = 21
	p.ConstDomain = 50
	p.WindowDomain = 200
	next10k := p.GenStreams(14000)[4000:] // continues past the warmup timestamps

	sys := mk()
	declareAll(t, sys, catalog)
	for _, q := range surv {
		if err := sys.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	churnTransients(t, sys, trans, events, 500)
	sys.Settle()

	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	res := restore(buf.Bytes())

	got, want := res.PlanInfo(), sys.PlanInfo()
	// BlocksProcessed is a runtime execution counter, not a plan property:
	// it does not survive a restore (the restored system replays nothing).
	got.BlocksProcessed, want.BlocksProcessed = 0, 0
	if got != want {
		t.Fatalf("restored PlanInfo %+v != original %+v", got, want)
	}
	if got, want := res.TotalResults(), sys.TotalResults(); got != want {
		t.Fatalf("restored TotalResults %d != %d", got, want)
	}
	// Frozen counts of removed transients survive restore.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("tr_%d", i)
		if got, want := res.ResultCount(name), sys.ResultCount(name); got != want {
			t.Fatalf("frozen count of %s: restored %d != %d", name, got, want)
		}
	}

	// The next 10k events must produce identical per-query results.
	for _, ev := range next10k {
		if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
		if err := res.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	sys.Settle()
	res.Settle()
	var total int64
	for _, q := range surv {
		got, want := res.ResultCount(q.Name), sys.ResultCount(q.Name)
		if got != want {
			t.Fatalf("query %s: restored run %d results, original %d", q.Name, got, want)
		}
		total += got
	}
	if total == 0 {
		t.Fatal("no results; equivalence is vacuous")
	}
	if got, want := res.TotalResults(), sys.TotalResults(); got != want {
		t.Fatalf("final TotalResults: restored %d != %d", got, want)
	}
}

func TestCheckpointRestoreChurnedSystem(t *testing.T) {
	checkpointRestoreChurned(t,
		func() restorableSys {
			s := rumor.New()
			return sysAdapter{churnSys: s, ckpt: s.Checkpoint, info: s.PlanInfo}
		},
		func(raw []byte) restorableSys {
			s, err := rumor.Restore(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			return sysAdapter{churnSys: s, ckpt: s.Checkpoint, info: s.PlanInfo}
		})
}

func TestCheckpointRestoreChurnedSharded(t *testing.T) {
	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var live []*rumor.ShardedSystem
			adapt := func(s *rumor.ShardedSystem) restorableSys {
				live = append(live, s)
				return sysAdapter{churnSys: s, ckpt: s.Checkpoint, info: s.PlanInfo,
					settle: func() {
						if err := s.Drain(); err != nil {
							t.Fatal(err)
						}
					}}
			}
			mk := func() restorableSys {
				return adapt(rumor.NewSharded(rumor.ShardConfig{Shards: shards, BatchSize: 64}))
			}
			restore := func(raw []byte) restorableSys {
				s, err := rumor.RestoreSharded(bytes.NewReader(raw), rumor.ShardConfig{BatchSize: 64})
				if err != nil {
					t.Fatal(err)
				}
				if got, want := s.NumShards(), shards; got != want {
					t.Fatalf("restored with %d shards, want %d", got, want)
				}
				// The routing-table version survives the round trip.
				if got, want := s.RoutingVersion(), live[0].RoutingVersion(); got != want {
					t.Fatalf("restored routing version %d, original %d", got, want)
				}
				return adapt(s)
			}
			defer func() {
				for _, s := range live {
					s.Close()
				}
			}()
			checkpointRestoreChurned(t, mk, restore)
		})
	}
}

// Kill-then-restore torture: periodic checkpoints while pushing; a fault
// kills a worker; the run resumes on a system restored from the last
// checkpoint with the post-checkpoint suffix re-pushed. Results must be
// exactly equal to an unfaulted single-engine run.
func TestKillThenRestoreTorture(t *testing.T) {
	for _, wl := range []string{"w1", "w2", "w3"} {
		for _, shards := range []int{2, 4} {
			for _, fp := range []string{"shard.flush.replay", "shard.drain.ack"} {
				t.Run(fmt.Sprintf("%s/shards=%d/%s", wl, shards, fp), func(t *testing.T) {
					killThenRestore(t, wl, shards, fp)
				})
			}
		}
	}
}

func killThenRestore(t *testing.T, wl string, shards int, fp string) {
	defer faultpoint.Reset()
	catalog, qs, events := churnWorkload(t, wl, 30, 4200, 9)

	ref := rumor.New()
	declareAll(t, ref, catalog)
	for _, q := range qs {
		if err := ref.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := ref.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}

	sys := rumor.NewSharded(rumor.ShardConfig{Shards: shards, BatchSize: 64})
	defer func() { sys.Close() }()
	declareAll(t, sys, catalog)
	for _, q := range qs {
		if err := sys.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}

	const every = 1000
	var last []byte // most recent durable checkpoint
	lastIdx := 0
	checkpoint := func(i int) {
		var b bytes.Buffer
		if err := sys.Checkpoint(&b); err != nil {
			t.Fatalf("checkpoint at %d: %v", i, err)
		}
		last, lastIdx = b.Bytes(), i
	}
	checkpoint(0)
	// Half-way through, arm the kill; the engine dies between two
	// checkpoints and the tail is recovered from the last one.
	armAt := len(events) / 2
	restores := 0
	i := 0
	for i < len(events) {
		if i == armAt {
			faultpoint.Arm(fp, 2)
		}
		if i%every == 0 && i > 0 {
			var b bytes.Buffer
			if err := sys.Checkpoint(&b); err == nil {
				last, lastIdx = b.Bytes(), i
			} else if !errors.Is(err, rumor.ErrShardDead) {
				t.Fatal(err)
			}
			// A dead-worker checkpoint failure falls through: the push
			// below surfaces the death and triggers the restore.
		}
		ev := events[i]
		err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...)
		if err == nil {
			i++
			continue
		}
		if !errors.Is(err, rumor.ErrShardDead) {
			t.Fatal(err)
		}
		// Crash: bring up a fresh system from the last checkpoint and
		// replay the suffix pushed since.
		res, rerr := rumor.RestoreSharded(bytes.NewReader(last), rumor.ShardConfig{BatchSize: 64})
		if rerr != nil {
			t.Fatal(rerr)
		}
		sys.Close()
		sys = res
		restores++
		for _, rev := range events[lastIdx:i] {
			if err := sys.Push(rev.Source, rev.Tuple.TS, rev.Tuple.Vals...); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Surface a late kill (e.g. on the drain path) and restore once more
	// if needed.
	for {
		err := sys.Drain()
		if err == nil {
			break
		}
		if !errors.Is(err, rumor.ErrShardDead) {
			t.Fatal(err)
		}
		res, rerr := rumor.RestoreSharded(bytes.NewReader(last), rumor.ShardConfig{BatchSize: 64})
		if rerr != nil {
			t.Fatal(rerr)
		}
		sys.Close()
		sys = res
		restores++
		for _, rev := range events[lastIdx:] {
			if err := sys.Push(rev.Source, rev.Tuple.TS, rev.Tuple.Vals...); err != nil {
				t.Fatal(err)
			}
		}
	}
	if faultpoint.Hits(fp) < 2 {
		t.Fatalf("fault %s never fired; torture vacuous", fp)
	}
	if restores == 0 {
		t.Fatal("worker death never surfaced; torture vacuous")
	}
	if ref.TotalResults() == 0 {
		t.Fatal("no results; equivalence vacuous")
	}
	for _, q := range qs {
		if got, want := sys.ResultCount(q.Name), ref.ResultCount(q.Name); got != want {
			t.Fatalf("query %s: %d results after restore, want %d", q.Name, got, want)
		}
	}
	if got, want := sys.TotalResults(), ref.TotalResults(); got != want {
		t.Fatalf("total results %d, want %d", got, want)
	}
}

// Kill-then-recover at the embedding API: RecoverShard absorbs the dead
// worker and the run finishes exactly.
func TestKillThenRecoverSharded(t *testing.T) {
	defer faultpoint.Reset()
	catalog, qs, events := churnWorkload(t, "w2", 30, 4200, 9)
	ref := rumor.New()
	declareAll(t, ref, catalog)
	for _, q := range qs {
		if err := ref.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := ref.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}

	sys := rumor.NewSharded(rumor.ShardConfig{Shards: 4, BatchSize: 64})
	defer sys.Close()
	declareAll(t, sys, catalog)
	for _, q := range qs {
		if err := sys.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	v0 := sys.RoutingVersion()
	faultpoint.Arm("shard.flush.replay", 10)
	recovered := 0
	for _, ev := range events {
		for {
			err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...)
			if err == nil {
				break
			}
			if !errors.Is(err, rumor.ErrShardDead) {
				t.Fatal(err)
			}
			st, rerr := sys.RecoverShard()
			if rerr != nil {
				t.Fatal(rerr)
			}
			if st.Shards != 3 || st.Version <= v0 {
				t.Fatalf("recover stats %+v", st)
			}
			recovered++
		}
	}
	for {
		err := sys.Drain()
		if err == nil {
			break
		}
		if !errors.Is(err, rumor.ErrShardDead) {
			t.Fatal(err)
		}
		if _, rerr := sys.RecoverShard(); rerr != nil {
			t.Fatal(rerr)
		}
		recovered++
	}
	if recovered != 1 {
		t.Fatalf("%d recoveries, want 1", recovered)
	}
	if sys.NumShards() != 3 {
		t.Fatalf("%d shards after recovery, want 3", sys.NumShards())
	}
	for _, q := range qs {
		if got, want := sys.ResultCount(q.Name), ref.ResultCount(q.Name); got != want {
			t.Fatalf("query %s: %d results, want %d", q.Name, got, want)
		}
	}
}

// The churn log replays a restored system to the same live query set; the
// replayed system then computes the same results.
func TestChurnLogReplay(t *testing.T) {
	catalog, qs, events := churnWorkload(t, "w2", 30, 6000, 15)
	sys := rumor.New()
	declareAll(t, sys, catalog)
	for _, q := range qs[:10] {
		if err := sys.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := sys.Checkpoint(&snap); err != nil {
		t.Fatal(err)
	}
	var log bytes.Buffer
	sys.SetChurnLog(&log)
	// Churn after the snapshot: adds and removes that only the log records.
	for i, q := range qs[10:20] {
		if err := sys.AddQueryLive(fmt.Sprintf("post_%d", i), q.Root); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := sys.RemoveQuery(fmt.Sprintf("post_%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.RemoveQuery(qs[0].Name); err != nil {
		t.Fatal(err)
	}

	res, err := rumor.Restore(bytes.NewReader(snap.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rumor.ReplayChurnLog(res, bytes.NewReader(log.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got, want := res.PlanInfo(), sys.PlanInfo(); got.Queries != want.Queries {
		t.Fatalf("replayed system has %d queries, original %d", got.Queries, want.Queries)
	}
	for _, ev := range events {
		if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
		if err := res.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, q := range qs[1:10] {
		got, want := res.ResultCount(q.Name), sys.ResultCount(q.Name)
		if got != want {
			t.Fatalf("query %s: replayed %d, original %d", q.Name, got, want)
		}
		total += got
	}
	for i := 4; i < 10; i++ {
		name := fmt.Sprintf("post_%d", i)
		if got, want := res.ResultCount(name), sys.ResultCount(name); got != want {
			t.Fatalf("query %s: replayed %d, original %d", name, got, want)
		}
	}
	if total == 0 {
		t.Fatal("no results; replay equivalence vacuous")
	}
}

// An injected checkpoint-write fault surfaces as an error and leaves the
// system fully usable; the retry succeeds.
func TestCheckpointWriteFault(t *testing.T) {
	defer faultpoint.Reset()
	catalog, qs, events := churnWorkload(t, "w1", 20, 1500, 3)
	sys := rumor.NewSharded(rumor.ShardConfig{Shards: 2, BatchSize: 64})
	defer sys.Close()
	declareAll(t, sys, catalog)
	for _, q := range qs {
		if err := sys.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	faultpoint.Arm("checkpoint.write", 1)
	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf); err == nil {
		t.Fatal("injected checkpoint fault did not surface")
	}
	buf.Reset()
	if err := sys.Checkpoint(&buf); err != nil {
		t.Fatalf("checkpoint retry: %v", err)
	}
	res, err := rumor.RestoreSharded(bytes.NewReader(buf.Bytes()), rumor.ShardConfig{BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if got, want := res.TotalResults(), sys.TotalResults(); got != want {
		t.Fatalf("restored TotalResults %d != %d", got, want)
	}
}

// An injected delta-apply fault fails AddQueryLive before any engine
// mutation: the old query set keeps running exactly.
func TestDeltaApplyFaultLeavesEngineUsable(t *testing.T) {
	defer faultpoint.Reset()
	catalog, qs, events := churnWorkload(t, "w2", 20, 3000, 3)
	sys := rumor.NewSharded(rumor.ShardConfig{Shards: 2, BatchSize: 64})
	defer sys.Close()
	ref := rumor.New()
	for _, s := range []churnSys{sys, ref} {
		declareAll(t, s, catalog)
		for _, q := range qs[:10] {
			if err := s.AddQuery(q.Name, q.Root); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Optimize(rumor.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	mid := len(events) / 2
	for _, ev := range events[:mid] {
		if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	faultpoint.Arm("shard.delta.apply", 1)
	if err := sys.AddQueryLive("doomed", qs[10].Root); err == nil {
		t.Fatal("injected delta-apply fault did not surface")
	}
	if err := sys.RemoveQuery("doomed"); err == nil {
		t.Fatal("failed add left the query registered")
	}
	for _, ev := range events[mid:] {
		if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := ref.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range qs[:10] {
		if got, want := sys.ResultCount(q.Name), ref.ResultCount(q.Name); got != want {
			t.Fatalf("query %s: %d results after failed delta, want %d", q.Name, got, want)
		}
	}
}
