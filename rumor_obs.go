package rumor

// Public telemetry surface over internal/obs: enable/disable the metric
// instruments, snapshot merged metrics from a running System or
// ShardedSystem (local, in-process sharded, and cluster deployments all
// merge through the same path — remote workers answer a stats RPC at the
// same quiesce barrier every maintenance operation uses), and read the
// lifecycle trace ring.
//
// Cost contract: with metrics disabled (the default) every instrumented
// hot path pays at most one predicted atomic-load branch; the engine's
// per-tuple path pays nothing at all (it caches the enable flag once per
// drain). Enabling metrics keeps the per-tuple path allocation-free and
// samples operator busy time 1-in-1024, so steady-state throughput moves
// by low single-digit percent at most (rumorbench -fig obs measures it).
// The lifecycle trace ring is always on: maintenance operations are rare
// and the ring is a fixed-size buffer.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/transport"
)

// EnableMetrics turns metric collection on or off process-wide. Off by
// default; the trace ring (TraceEvents) records regardless.
func EnableMetrics(on bool) { obs.Enable(on) }

// MetricsEnabled reports whether metric collection is on.
func MetricsEnabled() bool { return obs.Enabled() }

// Metrics is a merged point-in-time snapshot of the telemetry registry:
// counters (monotone sums), gauges (point values; per-shard series carry
// a `{shard="i"}` suffix in the name), and histograms.
type Metrics struct {
	Counters map[string]int64
	Gauges   map[string]int64
	Hists    map[string]Histogram
}

// Histogram is a fixed-layout power-of-two histogram: Buckets[i] counts
// observations whose value has bit-length i, i.e. v ≤ HistogramBucketBound(i)
// and v > HistogramBucketBound(i-1). The layout is fixed so snapshots from
// different shards merge element-wise.
type Histogram struct {
	Count   int64
	Sum     int64
	Buckets []int64
}

// HistogramBucketBound returns the inclusive upper bound of bucket i
// (2^i - 1), or -1 for the final +Inf bucket.
func HistogramBucketBound(i int) int64 { return obs.BucketBound(i) }

// TraceEvent is one entry of the lifecycle trace ring: a maintenance or
// fault-handling operation with its wall-clock time and duration.
type TraceEvent struct {
	Seq          int64  // total events ever recorded when this one was written
	TimeUnixNano int64  // wall-clock time of the record
	Kind         string // event kind, e.g. "delta_apply", "rebalance", "link_down"
	Detail       string // free-form detail, stable key=value text
	DurNS        int64  // duration of the operation, 0 when instantaneous
}

// TraceEvents returns the retained lifecycle events, oldest first. The
// ring holds the most recent 512 events; Seq exposes how many were ever
// recorded, so gaps from wraparound are detectable.
func TraceEvents() []TraceEvent {
	evs := obs.Trace.Events()
	out := make([]TraceEvent, len(evs))
	for i, ev := range evs {
		out[i] = TraceEvent{Seq: ev.Seq, TimeUnixNano: ev.TimeUnixNano, Kind: ev.Kind, Detail: ev.Detail, DurNS: ev.DurNS}
	}
	return out
}

// metricsFromSnapshot converts an internal snapshot to the public type.
func metricsFromSnapshot(s *obs.Snapshot) *Metrics {
	m := &Metrics{
		Counters: make(map[string]int64, len(s.Counters)),
		Gauges:   make(map[string]int64, len(s.Gauges)),
		Hists:    make(map[string]Histogram, len(s.Hists)),
	}
	for k, v := range s.Counters {
		m.Counters[k] = v
	}
	for k, v := range s.Gauges {
		m.Gauges[k] = v
	}
	for k, h := range s.Hists {
		m.Hists[k] = Histogram{Count: h.Count, Sum: h.Sum, Buckets: append([]int64(nil), h.Buckets[:]...)}
	}
	return m
}

// Metrics snapshots the system's telemetry: engine counters (tuples
// delivered, per-operator work, membership spills, window replays), the
// process-wide registry (live-maintenance latency histograms), and the
// transport counters. Stable between pushes; an unoptimized system
// reports only the process-wide registry.
func (s *System) Metrics() *Metrics {
	snap := obs.NewSnapshot()
	if s.eng != nil {
		s.eng.MetricsInto(snap)
	}
	obs.Default.Into(snap)
	transport.MetricsInto(snap)
	return metricsFromSnapshot(snap)
}

// Metrics snapshots the sharded system's telemetry, merged across every
// replica: engine counters per shard (remote replicas answer a stats RPC),
// router counters (multicast hits/drops, WAL volume), per-shard ingest and
// flush histograms and queue high-water gauges, cluster link health
// gauges, the process-wide registry, and the transport counters. It runs
// at the same batch-queue barrier as a live delta — concurrent pushers
// block briefly — and is serialized against maintenance operations. Dead
// shards are skipped; an unreachable worker fails the snapshot with
// ErrShardUnreachable.
func (s *ShardedSystem) Metrics() (*Metrics, error) {
	if s.sh == nil {
		return s.sys.Metrics(), nil
	}
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	snap, err := s.sh.Metrics()
	if err != nil {
		return nil, err
	}
	obs.Default.Into(snap)
	transport.MetricsInto(snap)
	return metricsFromSnapshot(snap), nil
}

// WorkerHealth reports one shard worker's link health as observed by the
// coordinator. For in-process shards only Shard is meaningful (Remote is
// false and the link fields stay zero).
type WorkerHealth struct {
	Shard      int
	Remote     bool  // replica lives in another process
	Dead       bool  // declared lost (ErrShardDead)
	Down       bool  // link currently down, redial in progress
	BootID     int64 // worker's last-observed boot identity (0 = never connected)
	Epoch      int64 // cluster epoch the worker last acknowledged
	LastRTTNS  int64 // most recent heartbeat round-trip
	Heartbeats int64 // successful heartbeat probes
	Redials    int64 // reconnect attempts after the initial dial
}

// WorkerHealth reports per-shard link health. Cheap — no barrier, no
// RPCs; values come from the coordinator's own link bookkeeping. Returns
// nil before Optimize.
func (s *ShardedSystem) WorkerHealth() []WorkerHealth {
	if s.sh == nil {
		return nil
	}
	raw := s.sh.WorkerHealth()
	out := make([]WorkerHealth, len(raw))
	for i, h := range raw {
		out[i] = WorkerHealth{
			Shard: h.Shard, Remote: h.Remote, Dead: h.Dead, Down: h.Down,
			BootID: h.BootID, Epoch: h.Epoch, LastRTTNS: h.LastRTTNS,
			Heartbeats: h.Heartbeats, Redials: h.Redials,
		}
	}
	return out
}

// noteLiveAdd records one live query add in the maintenance histograms
// and the trace ring.
func noteLiveAdd(name string, d *core.Delta, dur time.Duration) {
	if obs.Enabled() {
		obs.Default.Histogram("live_add_ns").Observe(dur.Nanoseconds())
	}
	obs.RecordEvent(obs.EvQueryAdd, fmt.Sprintf("query=%s dirty=%d", name, len(d.Dirty)), dur)
}

// noteLiveRemove records one live query removal, plus a compaction event
// when the removal compacted tombstone-dominated channels.
func noteLiveRemove(name string, d *core.Delta, dur time.Duration) {
	if obs.Enabled() {
		obs.Default.Histogram("live_remove_ns").Observe(dur.Nanoseconds())
	}
	obs.RecordEvent(obs.EvQueryRemove, fmt.Sprintf("query=%s removed=%d", name, len(d.Removed)), dur)
	if len(d.Remaps) > 0 {
		obs.RecordEvent(obs.EvCompaction, fmt.Sprintf("query=%s remaps=%d", name, len(d.Remaps)), 0)
	}
}
