package rumor_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	rumor "repro"
	"repro/internal/workload"
)

// TestLiveAddReRoutesSource exercises the lifted pinned-route rejection:
// Workload 2 hash-partitions S and T on a0; an unkeyed aggregate over S
// then requires S (and transitively T) broadcast, which ExtendPartition
// cannot serve under the pinned routes. The sharded system must accept the
// add anyway — re-analyzing the plan and migrating the running operator
// state to the new routes at the delta barrier — and stay result-identical
// to a single-engine system performing the same live add at the same
// stream position.
func TestLiveAddReRoutesSource(t *testing.T) {
	p := workload.DefaultParams()
	p.NumQueries = 80
	p.ConstDomain = 50
	qs, err := workload.ToRUMOR(p.Workload2Seq())
	if err != nil {
		t.Fatal(err)
	}
	events := p.GenStreams(6000)

	aggRoot := rumor.Agg(rumor.Count, 1, 800, nil, rumor.Scan("S"))

	for _, shards := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			sys := rumor.NewSharded(rumor.ShardConfig{Shards: shards, BatchSize: 64})
			defer sys.Close()
			ref := rumor.New()
			for name, decl := range p.Catalog() {
				if err := sys.DeclareStream(name, decl.Label, decl.Schema.Attrs...); err != nil {
					t.Fatal(err)
				}
				if err := ref.DeclareStream(name, decl.Label, decl.Schema.Attrs...); err != nil {
					t.Fatal(err)
				}
			}
			for _, q := range qs {
				if err := sys.AddQuery(q.Name, q.Root); err != nil {
					t.Fatal(err)
				}
				if err := ref.AddQuery(q.Name, q.Root); err != nil {
					t.Fatal(err)
				}
			}
			if err := sys.Optimize(rumor.Options{}); err != nil {
				t.Fatal(err)
			}
			if err := ref.Optimize(rumor.Options{}); err != nil {
				t.Fatal(err)
			}
			// The plan must actually be hash-partitioned for the scenario
			// to mean anything.
			if got := sys.PartitionInfo(); got == "" {
				t.Fatal("no partition info")
			}

			half := len(events) / 2
			push := func(evs []workload.Event) {
				for _, ev := range evs {
					if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
						t.Fatal(err)
					}
					if err := ref.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
						t.Fatal(err)
					}
				}
			}
			push(events[:half])
			// This add re-routes the running sources S and T: it must be
			// accepted (scoped rebalance), not rejected.
			if err := sys.AddQueryLive("s_total", aggRoot); err != nil {
				t.Fatalf("live add re-routing a running source was rejected: %v", err)
			}
			if err := ref.AddQueryLive("s_total", aggRoot); err != nil {
				t.Fatal(err)
			}
			push(events[half:])
			if err := sys.Drain(); err != nil {
				t.Fatal(err)
			}
			if ref.TotalResults() == 0 {
				t.Fatal("no results; equivalence is vacuous")
			}
			for _, q := range qs {
				if got, want := sys.ResultCount(q.Name), ref.ResultCount(q.Name); got != want {
					t.Fatalf("query %s: %d results, want %d", q.Name, got, want)
				}
			}
			if got, want := sys.ResultCount("s_total"), ref.ResultCount("s_total"); got != want {
				t.Fatalf("live-added aggregate: %d results, want %d", got, want)
			}
			if got, want := sys.TotalResults(), ref.TotalResults(); got != want {
				t.Fatalf("total results %d, want %d", got, want)
			}
		})
	}
}

// TestLiveAddReplicatesKeyedAggState pins the keyed→replicated migration
// of aggregation state whose partition key is NOT attribute 0: a grouped
// aggregate keyed on a1 runs hash-partitioned; a live unkeyed aggregate
// then forces the source broadcast, so the grouped aggregate's window
// must be merged onto every replica (key extraction reads the group-key
// component, not column 0).
func TestLiveAddReplicatesKeyedAggState(t *testing.T) {
	p := workload.DefaultParams()
	p.ConstDomain = 20
	events := p.GenStreams(4000)

	grouped := rumor.Agg(rumor.Sum, 2, 600, []int{1}, rumor.Scan("S"))
	unkeyed := rumor.Agg(rumor.Count, 0, 600, nil, rumor.Scan("S"))

	sys := rumor.NewSharded(rumor.ShardConfig{Shards: 4, BatchSize: 64})
	defer sys.Close()
	ref := rumor.New()
	// Result counts alone cannot see a mis-migrated window (an aggregate
	// emits one result per input either way): compare the result VALUE
	// multisets.
	collect := func() (map[string]int, func(q string, ts int64, vals []int64)) {
		seen := make(map[string]int)
		var mu sync.Mutex
		return seen, func(q string, ts int64, vals []int64) {
			mu.Lock()
			seen[fmt.Sprintf("%s@%d%v", q, ts, vals)]++
			mu.Unlock()
		}
	}
	sysSeen, sysFn := collect()
	refSeen, refFn := collect()
	sys.OnResult(sysFn)
	ref.OnResult(refFn)
	for name, decl := range p.Catalog() {
		if err := sys.DeclareStream(name, decl.Label, decl.Schema.Attrs...); err != nil {
			t.Fatal(err)
		}
		if err := ref.DeclareStream(name, decl.Label, decl.Schema.Attrs...); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.AddQuery("by_a1", grouped); err != nil {
		t.Fatal(err)
	}
	if err := ref.AddQuery("by_a1", grouped); err != nil {
		t.Fatal(err)
	}
	if err := sys.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := ref.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	if info := sys.PartitionInfo(); !strings.Contains(info, "S: hash(a1)") {
		t.Fatalf("scenario requires S hash-keyed on a1; got:\n%s", info)
	}
	half := len(events) / 2
	push := func(evs []workload.Event) {
		for _, ev := range evs {
			if ev.Source != "S" {
				continue // only S is in the plan
			}
			if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
				t.Fatal(err)
			}
			if err := ref.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
				t.Fatal(err)
			}
		}
	}
	push(events[:half])
	if err := sys.AddQueryLive("s_total", unkeyed); err != nil {
		t.Fatalf("live unkeyed aggregate rejected: %v", err)
	}
	if err := ref.AddQueryLive("s_total", unkeyed); err != nil {
		t.Fatal(err)
	}
	push(events[half:])
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{"by_a1", "s_total"} {
		got, want := sys.ResultCount(q), ref.ResultCount(q)
		if want == 0 {
			t.Fatalf("query %s produced nothing; test is vacuous", q)
		}
		if got != want {
			t.Fatalf("query %s: %d results, want %d", q, got, want)
		}
	}
	if len(sysSeen) == 0 {
		t.Fatal("no result values collected")
	}
	for k, n := range refSeen {
		if sysSeen[k] != n {
			t.Fatalf("result value multiset diverged at %s: sharded %d, reference %d", k, sysSeen[k], n)
		}
	}
	for k, n := range sysSeen {
		if refSeen[k] != n {
			t.Fatalf("sharded produced unexpected result %s ×%d (reference %d)", k, n, refSeen[k])
		}
	}
}

// TestShardedRebalanceDuringChurn drives the public API end to end: a
// mid-stream explicit Rebalance on a Zipf-skewed Workload 1, interleaved
// with live adds and removes, must keep every surviving query's counts
// identical to a from-scratch single-engine run.
func TestShardedRebalanceDuringChurn(t *testing.T) {
	p := workload.DefaultParams()
	p.NumQueries = 60
	p.ConstDomain = 50
	p.Zipf = 1.8
	qs, err := workload.ToRUMOR(p.Workload1())
	if err != nil {
		t.Fatal(err)
	}
	surv, trans := qs[:40], qs[40:]
	events := p.GenStreamsSkewed(8000)

	sys := rumor.NewSharded(rumor.ShardConfig{Shards: 4, BatchSize: 64})
	defer sys.Close()
	ref := rumor.New()
	for name, decl := range p.Catalog() {
		if err := sys.DeclareStream(name, decl.Label, decl.Schema.Attrs...); err != nil {
			t.Fatal(err)
		}
		if err := ref.DeclareStream(name, decl.Label, decl.Schema.Attrs...); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range surv {
		if err := sys.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
		if err := ref.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	if err := ref.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}

	chunks := 2 * len(trans)
	var active []string
	for i := 0; i < chunks; i++ {
		lo, hi := i*len(events)/chunks, (i+1)*len(events)/chunks
		for _, ev := range events[lo:hi] {
			if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
				t.Fatal(err)
			}
			if err := ref.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
				t.Fatal(err)
			}
		}
		switch {
		case i == chunks/2:
			if _, err := sys.Rebalance(); err != nil {
				t.Fatalf("mid-stream rebalance: %v", err)
			}
		case i%2 == 0 && i/2 < len(trans):
			name := fmt.Sprintf("tr_%d", i/2)
			if err := sys.AddQueryLive(name, trans[i/2].Root); err != nil {
				t.Fatal(err)
			}
			active = append(active, name)
		case len(active) > 0:
			if err := sys.RemoveQuery(active[0]); err != nil {
				t.Fatal(err)
			}
			active = active[1:]
		}
	}
	for _, name := range active {
		if err := sys.RemoveQuery(name); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, q := range surv {
		got, want := sys.ResultCount(q.Name), ref.ResultCount(q.Name)
		if got != want {
			t.Fatalf("query %s: %d results, want %d", q.Name, got, want)
		}
		total += got
	}
	if total == 0 {
		t.Fatal("survivors produced no results; equivalence is vacuous")
	}
}

// TestFrozenCountsAcrossEpochs pins the removed-query count contract
// against every epoch boundary the runtime has: a frozen final count must
// survive subsequent channel compactions, rebalance count rebases, and a
// re-add of the same definition (slot reuse + replay) — and TotalResults
// must keep equalling the sum of live counts plus frozen finals (no
// double-rebase, no drop).
func TestFrozenCountsAcrossEpochs(t *testing.T) {
	p := workload.DefaultParams()
	p.NumQueries = 20
	p.ConstDomain = 40
	p.Zipf = 1.8
	qs, err := workload.ToRUMOR(p.Workload1())
	if err != nil {
		t.Fatal(err)
	}
	events := p.GenStreamsSkewed(9000)

	sys := rumor.NewSharded(rumor.ShardConfig{Shards: 4, BatchSize: 64})
	defer sys.Close()
	for name, decl := range p.Catalog() {
		if err := sys.DeclareStream(name, decl.Label, decl.Schema.Attrs...); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range qs {
		if err := sys.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{Channels: true}); err != nil {
		t.Fatal(err)
	}
	third := len(events) / 3
	push := func(evs []workload.Event) {
		t.Helper()
		for _, ev := range evs {
			if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Drain(); err != nil {
			t.Fatal(err)
		}
	}
	push(events[:third])

	frozen := map[string]int64{}
	remove := func(name string) {
		t.Helper()
		if err := sys.RemoveQuery(name); err != nil {
			t.Fatal(err)
		}
		frozen[name] = sys.ResultCount(name)
	}
	checkFrozen := func(stage string) {
		t.Helper()
		for name, want := range frozen {
			if got := sys.ResultCount(name); got != want {
				t.Fatalf("%s: frozen count of %s drifted: %d, want %d", stage, name, got, want)
			}
		}
		var live int64
		for _, q := range qs {
			if _, dead := frozen[q.Name]; dead {
				continue
			}
			live += sys.ResultCount(q.Name)
		}
		live += sys.ResultCount("readd_0")
		var fro int64
		for _, f := range frozen {
			fro += f
		}
		if got := sys.TotalResults(); got != live+fro {
			t.Fatalf("%s: TotalResults %d, want live %d + frozen %d = %d", stage, got, live, fro, live+fro)
		}
	}

	remove(qs[0].Name)
	remove(qs[1].Name)
	checkFrozen("after removals")
	if _, err := sys.Rebalance(); err != nil {
		t.Fatal(err)
	}
	checkFrozen("after rebalance")
	push(events[third : 2*third])
	checkFrozen("after epoch traffic")
	// Re-adding the first query's definition reuses its tombstoned slot
	// and replays the shared window; its count restarts from zero while
	// the frozen final stays.
	if err := sys.AddQueryLive("readd_0", qs[0].Root); err != nil {
		t.Fatal(err)
	}
	remove(qs[2].Name) // may trigger channel compaction
	checkFrozen("after re-add + compacting removal")
	if _, err := sys.Rebalance(); err != nil {
		t.Fatal(err)
	}
	push(events[2*third:])
	checkFrozen("after second rebalance epoch")
	if sys.TotalResults() == 0 {
		t.Fatal("no results; the count audit is vacuous")
	}
}

// TestConcurrentPushRebalanceChurn races Push, Rebalance/MaybeRebalance,
// and AddQueryLive/RemoveQuery (run under -race).
func TestConcurrentPushRebalanceChurn(t *testing.T) {
	p := workload.DefaultParams()
	p.NumQueries = 30
	p.ConstDomain = 50
	qs, err := workload.ToRUMOR(p.Workload2Seq())
	if err != nil {
		t.Fatal(err)
	}
	events := p.GenStreamsSkewed(8000)
	sys := rumor.NewSharded(rumor.ShardConfig{Shards: 4, BatchSize: 32})
	defer sys.Close()
	for name, decl := range p.Catalog() {
		if err := sys.DeclareStream(name, decl.Label, decl.Schema.Attrs...); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range qs[:15] {
		if err := sys.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, ev := range events {
			if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if _, err := sys.Rebalance(); err != nil {
				t.Error(err)
				return
			}
			if _, _, err := sys.MaybeRebalance(1.1); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 12; i++ {
		name := fmt.Sprintf("c_%d", i)
		if err := sys.AddQueryLive(name, qs[15+i%15].Root); err != nil {
			t.Fatal(err)
		}
		if i >= 2 {
			if err := sys.RemoveQuery(fmt.Sprintf("c_%d", i-2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	wg.Wait()
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	if sys.TotalResults() == 0 {
		t.Fatal("no results under concurrent churn and rebalance")
	}
}
