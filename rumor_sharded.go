package rumor

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/live"
	"repro/internal/shard"
	"repro/internal/stream"
)

// ShardConfig sizes a ShardedSystem.
type ShardConfig struct {
	// Shards is the number of engine replicas (default 1).
	Shards int
	// BatchSize is the number of tuples accumulated per shard before the
	// buffer is handed to the shard's worker goroutine (default 256).
	// Larger batches amortize the cross-goroutine transfer at the cost of
	// result latency.
	BatchSize int
	// QueueDepth bounds the batches buffered per shard; a full queue
	// applies backpressure to pushers (default 8).
	QueueDepth int
}

// ShardedSystem is a RUMOR instance executing one optimized plan across N
// engine replicas. Declaration and planning mirror System; at Optimize the
// plan is analyzed for partitionability (see core.AnalyzePartition): each
// source stream is routed by hashing a partition attribute when the plan's
// stateful operators are equi-keyed, round-robin when its tuples only
// build operator state probed by a broadcast side (or flow through
// stateless operators), and broadcast otherwise. Results are merged from
// per-shard counters; replicated sinks are attributed to shard 0 only.
//
// Push and PushBatch are safe for concurrent use. Tuples are processed
// asynchronously: call Drain to wait for quiescence before reading
// counts, and Close to shut the workers down.
type ShardedSystem struct {
	sys *System
	cfg ShardConfig

	sh   *shard.Engine
	part *core.PartitionPlan

	// churnMu serializes live maintenance operations (AddQueryLive,
	// RemoveQuery) against each other; pushes stay concurrent and block
	// only for the barrier inside shard.Engine.ApplyDelta.
	churnMu sync.Mutex
	// nameMu guards the query-name bookkeeping (sys.byName, sys.queries,
	// removed) so ResultCount stays safe against concurrent maintenance.
	nameMu sync.RWMutex

	// removed maps live-removed query names to their frozen final counts.
	removed map[string]int64

	onResult func(query string, ts int64, vals []int64)
}

// NewSharded creates an empty sharded system.
func NewSharded(cfg ShardConfig) *ShardedSystem {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	return &ShardedSystem{sys: New(), cfg: cfg}
}

// DeclareStream registers a source stream (see System.DeclareStream).
func (s *ShardedSystem) DeclareStream(name, sharableLabel string, attrs ...string) error {
	return s.sys.DeclareStream(name, sharableLabel, attrs...)
}

// ExecScript parses a CQL script (see System.ExecScript).
func (s *ShardedSystem) ExecScript(src string) error {
	return s.sys.ExecScript(src)
}

// AddQuery registers a programmatically built continuous query.
func (s *ShardedSystem) AddQuery(name string, root *Logical) error {
	return s.sys.AddQuery(name, root)
}

// OnResult registers the result callback. Calls are sequenced across
// shards (one at a time), attributed by query name. Must be registered
// before the first Push; the callback must not retain the tuple values.
func (s *ShardedSystem) OnResult(fn func(query string, ts int64, vals []int64)) {
	s.onResult = fn
	if s.sh != nil {
		s.wireCallback()
	}
}

func (s *ShardedSystem) wireCallback() {
	if s.onResult == nil {
		s.sh.OnResult(nil)
		return
	}
	s.nameMu.RLock()
	names := make(map[int]string, len(s.sys.queries))
	for _, q := range s.sys.queries {
		names[q.ID] = q.Name
	}
	s.nameMu.RUnlock()
	fn := s.onResult
	s.sh.OnResult(func(qid int, t *stream.Tuple) {
		fn(names[qid], t.TS, t.Vals)
	})
}

// Optimize plans all registered queries, applies the m-rules, analyzes
// partitionability, and starts the shard workers. It must be called
// exactly once.
func (s *ShardedSystem) Optimize(opt Options) error {
	plan, err := s.sys.buildPlan(opt)
	if err != nil {
		return err
	}
	part := core.AnalyzePartition(plan)
	sh, err := shard.New(plan, part, shard.Config{
		Shards:     s.cfg.Shards,
		BatchSize:  s.cfg.BatchSize,
		QueueDepth: s.cfg.QueueDepth,
	})
	if err != nil {
		return err
	}
	s.sys.plan = plan
	s.sh = sh
	s.part = part
	if s.onResult != nil {
		s.wireCallback()
	}
	return nil
}

// AddQueryLive registers a continuous query on the running sharded
// system. The shared plan is re-optimized incrementally (see
// System.AddQueryLive), the partition plan is extended — existing source
// routes are pinned (the distributed operator state depends on them) and
// only multicast tables grow and new sources receive fresh routes — and
// the delta is applied to every engine replica at a batch-queue barrier.
//
// When the new query cannot be served under the pinned routes (it would
// re-route a running source — e.g. it needs a broadcast of a currently
// partitioned stream), the system performs a scoped rebalance instead of
// rejecting the add: the grown plan is re-analyzed from scratch and, at
// the same barrier that splices the delta, every stateful operator's
// stored state is drained, re-hashed to its owners under the new routes,
// and imported there before ingestion resumes (shard.ApplyDeltaRebalance).
//
// State semantics match System.AddQueryLive: a query merged into an
// existing channel-mode stateful group has each replica's retained window
// replayed under its membership bit (filtered through its gating
// selections), and channel growth reuses tombstoned slots before
// widening. Safe to call while other goroutines Push; maintenance
// operations are serialized internally. Before Optimize it is equivalent
// to AddQuery.
func (s *ShardedSystem) AddQueryLive(name string, root *Logical) error {
	if s.sh == nil {
		return s.sys.AddQuery(name, root)
	}
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	s.nameMu.RLock()
	_, dup := s.sys.byName[name]
	s.nameMu.RUnlock()
	if dup {
		return fmt.Errorf("rumor: query %q already registered", name)
	}
	start := time.Now()
	q := core.NewQuery(name, root)
	m := live.NewMaintainer(s.sys.plan, s.sys.ropts)
	d, err := m.AddQuery(q)
	if err != nil {
		return fmt.Errorf("rumor: %w", err)
	}
	part, perr := core.ExtendPartition(s.sys.plan, s.part)
	rebalance := false
	if perr != nil {
		// The pinned routes cannot serve the grown plan. Re-analyze from
		// scratch; the state migration below moves the running operator
		// state to wherever the new routes place it. The key-placement
		// overlay restarts empty under a bumped version (adaptive
		// rebalancing re-flattens later if skew rebuilds).
		part = core.AnalyzePartition(s.sys.plan)
		part.Table = &core.RoutingTable{Version: s.part.RoutingVersion() + 1}
		rebalance = true
	}
	s.nameMu.Lock()
	s.sys.queries = append(s.sys.queries, q)
	s.sys.byName[name] = q
	delete(s.removed, name)
	s.nameMu.Unlock()
	apply := s.sh.ApplyDelta
	if rebalance {
		apply = s.sh.ApplyDeltaRebalance
	}
	if err := apply(d, part, nil, func() { s.wireCallback() }); err != nil {
		// The engine rejected (or rolled back) the delta; undo the name
		// bookkeeping so the registered set matches what the engine serves.
		s.nameMu.Lock()
		s.sys.queries = removeQueryFrom(s.sys.queries, q)
		delete(s.sys.byName, name)
		s.nameMu.Unlock()
		return fmt.Errorf("rumor: %w", err)
	}
	s.part = part
	noteLiveAdd(name, d, time.Since(start))
	return s.sys.logChurnAdd(name, root, d)
}

// Rebalance drains the shards, migrates stored operator state onto a
// freshly balanced key placement (hot keys move — or split, when the plan
// allows — off overloaded shards), swaps the versioned routing table, and
// resumes ingestion. Results are unaffected; only placement changes. Safe
// to call while other goroutines Push.
func (s *ShardedSystem) Rebalance() (RebalanceStats, error) {
	if s.sh == nil {
		return RebalanceStats{}, fmt.Errorf("rumor: call Optimize before Rebalance")
	}
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	st, err := s.sh.Rebalance(nil)
	return s.finishRebalance(st, err == nil), err
}

// finishRebalance adopts the routing table a shard-level rebalance
// installed and converts its stats. Caller holds churnMu.
func (s *ShardedSystem) finishRebalance(st shard.RebalanceStats, ran bool) RebalanceStats {
	if ran {
		s.part = s.sh.PartitionPlan()
	}
	return RebalanceStats{
		Moved: st.Moved, Dropped: st.Dropped, Keys: st.Keys,
		PauseNS: st.Pause.Nanoseconds(), Version: st.Version,
	}
}

// MaybeRebalance rebalances only when the busy-time drift across shards
// since the last rebalance exceeds maxImbalance (slowest shard over mean;
// e.g. 1.25 tolerates 25%). It reports whether a rebalance ran.
func (s *ShardedSystem) MaybeRebalance(maxImbalance float64) (bool, RebalanceStats, error) {
	if s.sh == nil {
		return false, RebalanceStats{}, fmt.Errorf("rumor: call Optimize before MaybeRebalance")
	}
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	ran, st, err := s.sh.MaybeRebalance(maxImbalance)
	return ran, s.finishRebalance(st, ran && err == nil), err
}

// RebalanceStats reports one online rebalance.
type RebalanceStats struct {
	Moved   int   // state items imported on a new owner shard
	Dropped int   // replicated copies deduplicated away
	Keys    int   // keys with explicit placements afterwards
	PauseNS int64 // ingestion pause, barrier to resume
	Version int   // routing-table version now in effect
}

// RemoveQuery unsubscribes a continuous query from the running sharded
// system: its exclusively owned operators are garbage-collected on every
// replica at a batch-queue barrier, multicast routing tables shed the
// constants only it needed, tombstone-dominated channels are compacted
// (every replica rewrites its stored memberships through the recorded
// position remap at the same barrier), and its merged final result count
// is frozen (still visible through ResultCount and TotalResults, across
// later compactions and rebalance epoch rebases). Safe to call while
// other goroutines Push.
func (s *ShardedSystem) RemoveQuery(name string) error {
	if s.sh == nil {
		return s.sys.RemoveQuery(name)
	}
	s.churnMu.Lock()
	defer s.churnMu.Unlock()
	s.nameMu.RLock()
	q, ok := s.sys.byName[name]
	s.nameMu.RUnlock()
	if !ok {
		return fmt.Errorf("rumor: query %q not registered", name)
	}
	start := time.Now()
	m := live.NewMaintainer(s.sys.plan, s.sys.ropts)
	d, err := m.RemoveQuery(q.ID)
	if err != nil {
		return fmt.Errorf("rumor: %w", err)
	}
	part, perr := core.ExtendPartition(s.sys.plan, s.part)
	if perr != nil {
		// Routes valid for the superset query set stay valid for the
		// subset; keep the old routing (pruning is an optimization, not a
		// correctness requirement).
		part = s.part
	}
	s.nameMu.Lock()
	s.sys.queries = removeQueryFrom(s.sys.queries, q)
	delete(s.sys.byName, name)
	s.nameMu.Unlock()
	if err := s.sh.ApplyDelta(d, part, []int{q.ID}, func() { s.wireCallback() }); err != nil {
		s.nameMu.Lock()
		s.sys.queries = append(s.sys.queries, q)
		s.sys.byName[name] = q
		s.nameMu.Unlock()
		return fmt.Errorf("rumor: %w", err)
	}
	s.part = part
	s.nameMu.Lock()
	if s.removed == nil {
		s.removed = make(map[string]int64)
	}
	s.removed[name] = s.sh.ResultCount(q.ID)
	s.nameMu.Unlock()
	noteLiveRemove(name, d, time.Since(start))
	return s.sys.logChurnRemove(name, d)
}

// Push injects one tuple into a source stream; it is routed to the owning
// shard (or all shards for broadcast sources) and processed
// asynchronously. The system takes ownership of vals. Tuples must be
// pushed in non-decreasing timestamp order.
func (s *ShardedSystem) Push(streamName string, ts int64, vals ...int64) error {
	if s.sh == nil {
		return fmt.Errorf("rumor: call Optimize before Push")
	}
	return s.sh.Push(streamName, ts, vals)
}

// PushBatch injects a batch of tuples into one source stream under a
// single routing pass. ts[i] pairs with vals[i]; the system takes
// ownership of the value slices.
func (s *ShardedSystem) PushBatch(streamName string, ts []int64, vals [][]int64) error {
	if s.sh == nil {
		return fmt.Errorf("rumor: call Optimize before PushBatch")
	}
	return s.sh.PushBatch(streamName, ts, vals)
}

// PushColumns injects a batch given column-major — ts[i] pairs with
// cols[a][i] — keeping it columnar through the router, the per-shard WAL,
// and the worker queues until each replica engine's vectorized path. The
// system takes ownership of ts and cols.
func (s *ShardedSystem) PushColumns(streamName string, ts []int64, cols [][]int64) error {
	if s.sh == nil {
		return fmt.Errorf("rumor: call Optimize before PushColumns")
	}
	return s.sh.PushColumns(streamName, ts, cols)
}

// SetBlockSize tunes the vectorized ingest path of every in-process shard
// replica (see System.SetBlockSize; n < 0 disables vectorization). The
// change lands behind a quiesce barrier.
func (s *ShardedSystem) SetBlockSize(n int) error {
	if s.sh == nil {
		return fmt.Errorf("rumor: call Optimize before SetBlockSize")
	}
	return s.sh.SetBlockSize(n)
}

// Drain blocks until every shard has processed all tuples pushed so far.
// Result counts are stable afterwards (until the next Push).
func (s *ShardedSystem) Drain() error {
	if s.sh == nil {
		return fmt.Errorf("rumor: call Optimize before Drain")
	}
	return s.sh.Drain()
}

// Close drains and stops the shard workers. Further pushes fail. Close is
// idempotent.
func (s *ShardedSystem) Close() error {
	if s.sh == nil {
		return nil
	}
	return s.sh.Close()
}

// ResultCount returns the merged result count for a query. Call Drain
// first for a stable value. A query removed live reports its frozen final
// count.
func (s *ShardedSystem) ResultCount(query string) int64 {
	s.nameMu.RLock()
	q, ok := s.sys.byName[query]
	frozen := s.removed[query]
	s.nameMu.RUnlock()
	if !ok || s.sh == nil {
		return frozen
	}
	return s.sh.ResultCount(q.ID)
}

// TotalResults returns the merged result count across all queries. Call
// Drain first for a stable value.
func (s *ShardedSystem) TotalResults() int64 {
	if s.sh == nil {
		return 0
	}
	return s.sh.TotalResults()
}

// NumShards returns the number of engine replicas.
func (s *ShardedSystem) NumShards() int {
	if s.sh == nil {
		return s.cfg.Shards
	}
	return s.sh.NumShards()
}

// PartitionInfo renders the routing decisions of the partitionability
// analysis (empty before Optimize).
func (s *ShardedSystem) PartitionInfo() string {
	if s.part == nil {
		return ""
	}
	return s.part.String()
}

// ShardStat reports one shard's load after a Drain.
type ShardStat struct {
	Shard   int
	Tuples  int64 // tuples routed into the shard
	BusyNS  int64 // time the shard's worker spent processing
	Results int64 // results produced by the shard
}

// ShardStats returns per-shard load counters. Call Drain first for stable
// values.
func (s *ShardedSystem) ShardStats() []ShardStat {
	if s.sh == nil {
		return nil
	}
	raw := s.sh.ShardStats()
	out := make([]ShardStat, len(raw))
	for i, st := range raw {
		out[i] = ShardStat{Shard: st.Shard, Tuples: st.Tuples, BusyNS: st.BusyNS, Results: st.Results}
	}
	return out
}

// PlanInfo returns summary statistics of the optimized plan, including
// the multicast routing-table width of the partition analysis.
func (s *ShardedSystem) PlanInfo() PlanInfo {
	info := s.sys.PlanInfo()
	if s.part != nil {
		for _, r := range s.part.Routes {
			info.MulticastKeys += len(r.Table)
		}
	}
	if s.sh != nil {
		info.BlocksProcessed = s.sh.BlocksProcessed()
	}
	return info
}

// PlanString renders the optimized physical plan for inspection.
func (s *ShardedSystem) PlanString() string {
	return s.sys.PlanString()
}
