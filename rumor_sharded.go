package rumor

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/shard"
	"repro/internal/stream"
)

// ShardConfig sizes a ShardedSystem.
type ShardConfig struct {
	// Shards is the number of engine replicas (default 1).
	Shards int
	// BatchSize is the number of tuples accumulated per shard before the
	// buffer is handed to the shard's worker goroutine (default 256).
	// Larger batches amortize the cross-goroutine transfer at the cost of
	// result latency.
	BatchSize int
	// QueueDepth bounds the batches buffered per shard; a full queue
	// applies backpressure to pushers (default 8).
	QueueDepth int
}

// ShardedSystem is a RUMOR instance executing one optimized plan across N
// engine replicas. Declaration and planning mirror System; at Optimize the
// plan is analyzed for partitionability (see core.AnalyzePartition): each
// source stream is routed by hashing a partition attribute when the plan's
// stateful operators are equi-keyed, round-robin when its tuples only
// build operator state probed by a broadcast side (or flow through
// stateless operators), and broadcast otherwise. Results are merged from
// per-shard counters; replicated sinks are attributed to shard 0 only.
//
// Push and PushBatch are safe for concurrent use. Tuples are processed
// asynchronously: call Drain to wait for quiescence before reading
// counts, and Close to shut the workers down.
type ShardedSystem struct {
	sys *System
	cfg ShardConfig

	sh   *shard.Engine
	part *core.PartitionPlan

	onResult func(query string, ts int64, vals []int64)
}

// NewSharded creates an empty sharded system.
func NewSharded(cfg ShardConfig) *ShardedSystem {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	return &ShardedSystem{sys: New(), cfg: cfg}
}

// DeclareStream registers a source stream (see System.DeclareStream).
func (s *ShardedSystem) DeclareStream(name, sharableLabel string, attrs ...string) error {
	return s.sys.DeclareStream(name, sharableLabel, attrs...)
}

// ExecScript parses a CQL script (see System.ExecScript).
func (s *ShardedSystem) ExecScript(src string) error {
	return s.sys.ExecScript(src)
}

// AddQuery registers a programmatically built continuous query.
func (s *ShardedSystem) AddQuery(name string, root *Logical) error {
	return s.sys.AddQuery(name, root)
}

// OnResult registers the result callback. Calls are sequenced across
// shards (one at a time), attributed by query name. Must be registered
// before the first Push; the callback must not retain the tuple values.
func (s *ShardedSystem) OnResult(fn func(query string, ts int64, vals []int64)) {
	s.onResult = fn
	if s.sh != nil {
		s.wireCallback()
	}
}

func (s *ShardedSystem) wireCallback() {
	if s.onResult == nil {
		s.sh.OnResult(nil)
		return
	}
	names := make(map[int]string, len(s.sys.queries))
	for _, q := range s.sys.queries {
		names[q.ID] = q.Name
	}
	fn := s.onResult
	s.sh.OnResult(func(qid int, t *stream.Tuple) {
		fn(names[qid], t.TS, t.Vals)
	})
}

// Optimize plans all registered queries, applies the m-rules, analyzes
// partitionability, and starts the shard workers. It must be called
// exactly once.
func (s *ShardedSystem) Optimize(opt Options) error {
	plan, err := s.sys.buildPlan(opt)
	if err != nil {
		return err
	}
	part := core.AnalyzePartition(plan)
	sh, err := shard.New(plan, part, shard.Config{
		Shards:     s.cfg.Shards,
		BatchSize:  s.cfg.BatchSize,
		QueueDepth: s.cfg.QueueDepth,
	})
	if err != nil {
		return err
	}
	s.sys.plan = plan
	s.sh = sh
	s.part = part
	if s.onResult != nil {
		s.wireCallback()
	}
	return nil
}

// Push injects one tuple into a source stream; it is routed to the owning
// shard (or all shards for broadcast sources) and processed
// asynchronously. The system takes ownership of vals. Tuples must be
// pushed in non-decreasing timestamp order.
func (s *ShardedSystem) Push(streamName string, ts int64, vals ...int64) error {
	if s.sh == nil {
		return fmt.Errorf("rumor: call Optimize before Push")
	}
	return s.sh.Push(streamName, ts, vals)
}

// PushBatch injects a batch of tuples into one source stream under a
// single routing pass. ts[i] pairs with vals[i]; the system takes
// ownership of the value slices.
func (s *ShardedSystem) PushBatch(streamName string, ts []int64, vals [][]int64) error {
	if s.sh == nil {
		return fmt.Errorf("rumor: call Optimize before PushBatch")
	}
	return s.sh.PushBatch(streamName, ts, vals)
}

// Drain blocks until every shard has processed all tuples pushed so far.
// Result counts are stable afterwards (until the next Push).
func (s *ShardedSystem) Drain() error {
	if s.sh == nil {
		return fmt.Errorf("rumor: call Optimize before Drain")
	}
	return s.sh.Drain()
}

// Close drains and stops the shard workers. Further pushes fail. Close is
// idempotent.
func (s *ShardedSystem) Close() error {
	if s.sh == nil {
		return nil
	}
	return s.sh.Close()
}

// ResultCount returns the merged result count for a query. Call Drain
// first for a stable value.
func (s *ShardedSystem) ResultCount(query string) int64 {
	q, ok := s.sys.byName[query]
	if !ok || s.sh == nil {
		return 0
	}
	return s.sh.ResultCount(q.ID)
}

// TotalResults returns the merged result count across all queries. Call
// Drain first for a stable value.
func (s *ShardedSystem) TotalResults() int64 {
	if s.sh == nil {
		return 0
	}
	return s.sh.TotalResults()
}

// NumShards returns the number of engine replicas.
func (s *ShardedSystem) NumShards() int {
	if s.sh == nil {
		return s.cfg.Shards
	}
	return s.sh.NumShards()
}

// PartitionInfo renders the routing decisions of the partitionability
// analysis (empty before Optimize).
func (s *ShardedSystem) PartitionInfo() string {
	if s.part == nil {
		return ""
	}
	return s.part.String()
}

// ShardStat reports one shard's load after a Drain.
type ShardStat struct {
	Shard   int
	Tuples  int64 // tuples routed into the shard
	BusyNS  int64 // time the shard's worker spent processing
	Results int64 // results produced by the shard
}

// ShardStats returns per-shard load counters. Call Drain first for stable
// values.
func (s *ShardedSystem) ShardStats() []ShardStat {
	if s.sh == nil {
		return nil
	}
	raw := s.sh.ShardStats()
	out := make([]ShardStat, len(raw))
	for i, st := range raw {
		out[i] = ShardStat{Shard: st.Shard, Tuples: st.Tuples, BusyNS: st.BusyNS, Results: st.Results}
	}
	return out
}

// PlanInfo returns summary statistics of the optimized plan.
func (s *ShardedSystem) PlanInfo() PlanInfo {
	return s.sys.PlanInfo()
}

// PlanString renders the optimized physical plan for inspection.
func (s *ShardedSystem) PlanString() string {
	return s.sys.PlanString()
}
