package rumor_test

import (
	"fmt"
	"sync"
	"testing"

	rumor "repro"
	"repro/internal/core"
	"repro/internal/workload"
)

// The churn equivalence tests drive the live query lifecycle: starting
// from an optimized plan, they interleave ≥100 AddQueryLive/RemoveQuery
// operations with pushes and assert that every SURVIVING query's result
// count equals a from-scratch single-engine run that planned only the
// survivors up front. Transient queries (added and later removed
// mid-stream) must not disturb the survivors' shared operator state.
//
// To keep the equivalence exact, every surviving query is registered
// before the first push (half via Optimize, half via AddQueryLive):
// queries added mid-stream start without window history (see the live
// package doc), so only transients are churned mid-stream.

// churnSys is the surface the equivalence harness needs; satisfied by
// both *rumor.System and *rumor.ShardedSystem.
type churnSys interface {
	DeclareStream(name, sharableLabel string, attrs ...string) error
	AddQuery(name string, root *rumor.Logical) error
	AddQueryLive(name string, root *rumor.Logical) error
	RemoveQuery(name string) error
	Optimize(opt rumor.Options) error
	Push(streamName string, ts int64, vals ...int64) error
	ResultCount(query string) int64
	TotalResults() int64
}

// churnWorkload generates one of the paper's workloads at test scale,
// with a compressed constant domain so matches are dense.
func churnWorkload(t *testing.T, wl string, nq, tuples int, seed int64) (map[string]core.SourceDecl, []*core.Query, []workload.Event) {
	t.Helper()
	p := workload.DefaultParams()
	p.NumQueries = nq
	p.Seed = seed
	p.ConstDomain = 50
	p.WindowDomain = 200
	switch wl {
	case "w1":
		qs, err := workload.ToRUMOR(p.Workload1())
		if err != nil {
			t.Fatal(err)
		}
		return p.Catalog(), qs, p.GenStreams(tuples)
	case "w2":
		qs, err := workload.ToRUMOR(p.Workload2Seq())
		if err != nil {
			t.Fatal(err)
		}
		return p.Catalog(), qs, p.GenStreams(tuples)
	case "w2mu":
		qs, err := workload.ToRUMOR(p.Workload2Mu())
		if err != nil {
			t.Fatal(err)
		}
		return p.Catalog(), qs, p.GenStreams(tuples)
	case "w3":
		const k = 5
		return p.Workload3Catalog(k), p.Workload3(k), p.Workload3Rounds(k, tuples/(k+1))
	}
	t.Fatalf("unknown workload %s", wl)
	return nil, nil, nil
}

func declareAll(t *testing.T, sys churnSys, catalog map[string]core.SourceDecl) {
	t.Helper()
	for name, decl := range catalog {
		if err := sys.DeclareStream(name, decl.Label, decl.Schema.Attrs...); err != nil {
			t.Fatal(err)
		}
	}
}

// runChurn drives one churn scenario and checks survivor equivalence.
// drain establishes quiescence before counts are read (no-op for the
// single-threaded System).
func runChurn(t *testing.T, sys churnSys, drain func(), opt rumor.Options,
	catalog map[string]core.SourceDecl, surv, trans []*core.Query, events []workload.Event) {
	t.Helper()

	declareAll(t, sys, catalog)
	half := len(surv) / 2
	for _, q := range surv[:half] {
		if err := sys.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(opt); err != nil {
		t.Fatal(err)
	}
	churnOps := 0
	// The second half of the survivors joins live, before the first push.
	for _, q := range surv[half:] {
		if err := sys.AddQueryLive(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
		churnOps++
	}

	// Interleave transient add/remove with pushes: one chunk of events,
	// one transient added, the transient added two chunks earlier removed.
	chunks := len(trans)
	var activeTrans []string
	next := 0
	for i := 0; i < chunks; i++ {
		lo, hi := i*len(events)/chunks, (i+1)*len(events)/chunks
		for _, ev := range events[lo:hi] {
			if err := sys.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
				t.Fatal(err)
			}
		}
		q := trans[i]
		name := fmt.Sprintf("tr_%d", i)
		if err := sys.AddQueryLive(name, q.Root); err != nil {
			t.Fatal(err)
		}
		activeTrans = append(activeTrans, name)
		churnOps++
		if len(activeTrans) > 2 {
			if err := sys.RemoveQuery(activeTrans[next]); err != nil {
				t.Fatal(err)
			}
			next++
			churnOps++
		}
	}
	for ; next < len(activeTrans); next++ {
		if err := sys.RemoveQuery(activeTrans[next]); err != nil {
			t.Fatal(err)
		}
		churnOps++
	}
	drain()
	if churnOps < 100 {
		t.Fatalf("only %d churn operations, want ≥ 100", churnOps)
	}

	// Reference: a from-scratch single engine planning only the survivors.
	ref := rumor.New()
	declareAll(t, ref, catalog)
	for _, q := range surv {
		if err := ref.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Optimize(opt); err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if err := ref.Push(ev.Source, ev.Tuple.TS, ev.Tuple.Vals...); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, q := range surv {
		got, want := sys.ResultCount(q.Name), ref.ResultCount(q.Name)
		if got != want {
			t.Fatalf("query %s: churn run = %d results, from-scratch = %d", q.Name, got, want)
		}
		total += got
	}
	if total == 0 {
		t.Fatal("survivors produced no results; the equivalence check is vacuous")
	}
}

func TestChurnEquivalenceSystem(t *testing.T) {
	for _, wl := range []string{"w1", "w2", "w2mu", "w3"} {
		for _, channels := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/channels=%v", wl, channels), func(t *testing.T) {
				catalog, surv, events := churnWorkload(t, wl, 40, 4200, 1)
				_, trans, _ := churnWorkload(t, wl, 40, 0, 99)
				runChurn(t, rumor.New(), func() {}, rumor.Options{Channels: channels},
					catalog, surv, trans, events)
			})
		}
	}
}

func TestChurnEquivalenceSharded(t *testing.T) {
	for _, wl := range []string{"w1", "w2", "w3"} {
		for _, shards := range []int{1, 2, 4} {
			for _, channels := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/shards=%d/channels=%v", wl, shards, channels), func(t *testing.T) {
					catalog, surv, events := churnWorkload(t, wl, 40, 4200, 1)
					_, trans, _ := churnWorkload(t, wl, 40, 0, 99)
					sys := rumor.NewSharded(rumor.ShardConfig{Shards: shards, BatchSize: 64})
					defer sys.Close()
					runChurn(t, sys, func() {
						if err := sys.Drain(); err != nil {
							t.Fatal(err)
						}
					}, rumor.Options{Channels: channels}, catalog, surv, trans, events)
				})
			}
		}
	}
}

// TestChurnConcurrentPush exercises AddQueryLive/RemoveQuery racing with
// concurrent PushBatch callers on a sharded system (run under -race).
func TestChurnConcurrentPush(t *testing.T) {
	catalog, qs, events := churnWorkload(t, "w2", 20, 6000, 3)
	sys := rumor.NewSharded(rumor.ShardConfig{Shards: 2, BatchSize: 32})
	defer sys.Close()
	declareAll(t, sys, catalog)
	for _, q := range qs[:10] {
		if err := sys.AddQuery(q.Name, q.Root); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Optimize(rumor.Options{}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		const batch = 100
		for lo := 0; lo < len(events); lo += batch {
			hi := min(lo+batch, len(events))
			perSrc := map[string][]int{}
			var order []string
			for i, ev := range events[lo:hi] {
				if perSrc[ev.Source] == nil {
					order = append(order, ev.Source)
				}
				perSrc[ev.Source] = append(perSrc[ev.Source], lo+i)
			}
			for _, src := range order {
				var ts []int64
				var vals [][]int64
				for _, i := range perSrc[src] {
					ts = append(ts, events[i].Tuple.TS)
					vals = append(vals, events[i].Tuple.Vals)
				}
				if err := sys.PushBatch(src, ts, vals); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for i := 0; i < 20; i++ {
		name := fmt.Sprintf("c_%d", i)
		if err := sys.AddQueryLive(name, qs[10+i%10].Root); err != nil {
			t.Fatal(err)
		}
		if i >= 2 {
			if err := sys.RemoveQuery(fmt.Sprintf("c_%d", i-2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	wg.Wait()
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	if sys.TotalResults() == 0 {
		t.Fatal("no results under concurrent churn")
	}
}
